"""Toy leveled homomorphic encryption (BFV-lite) over the NTT ring.

The paper motivates BP-NTT with homomorphic encryption: the HE security
levels in §I (1024-point polynomials, 16/21/29-bit moduli) are exactly
the ``he-16bit/21bit/29bit`` parameter sets of this library.  This
module implements the operations whose cost is dominated by NTT-based
polynomial products:

- encryption / decryption with scale factor ``Delta = floor(q / t)``
  (plaintexts in Z_t[x]/(x^n + 1)),
- **homomorphic addition** (ciphertext + ciphertext),
- **plaintext multiplication** (ciphertext * plaintext polynomial),
- **ciphertext multiplication** with relinearization: the BFV tensor
  product's three components, the t/q rescale-and-round, and base-T
  evaluation keys (:meth:`HEContext.relin_keygen`) that fold the
  degree-2 term back into an ``(u, v)`` pair.

Ciphertext-ciphertext multiplication is what gives the scheme
*multiplicative depth*; every one of its constituent operations is a
negacyclic polynomial product — the exact kernel BP-NTT accelerates —
which is why the serving runtime can lower a logical ct x ct call into
engine requests (:func:`repro.serve.request.he_multiply_requests`).

Noise budget: every operation adds noise; decryption is guaranteed
while the accumulated noise stays at or below
:attr:`HEContext.noise_budget` (= ``(Delta - 1) // 2``).
:meth:`HEContext.noise_of` exposes the actual noise so tests can verify
the budget arithmetic, ciphertexts carry their multiplicative
:attr:`~HECiphertext.level`, and :func:`depth_profile` charts noise per
level until the budget is exhausted.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.errors import ParameterError
from repro.ntt.params import NTTParams
from repro.ntt.polynomial import Polynomial
from repro.ntt.transform import polymul_negacyclic
from repro.utils.primes import find_ntt_prime


def default_relin_base(q: int) -> int:
    """The default base-T of the relinearization decomposition for ``q``.

    ``2^ceil(bits/3)`` keeps the decomposition at three digits for any
    modulus, balancing evaluation-key size (more digits = more keys and
    more products per relinearization) against noise (a larger base
    means larger digits multiplying the key noise).
    """
    return 1 << -(-q.bit_length() // 3)


def relin_digit_count(q: int, base: int) -> int:
    """Digits needed to represent a canonical Z_q coefficient in base-T."""
    if base < 2:
        raise ParameterError(f"decomposition base must be >= 2, got {base}")
    digits = 1
    span = base
    while span < q:
        span *= base
        digits += 1
    return digits


@dataclass(frozen=True)
class HEKeyPair:
    """Public key (a, b = a*s + e) and secret key s."""

    a: Polynomial
    b: Polynomial
    s: Polynomial


@dataclass(frozen=True)
class RelinKey:
    """Base-T evaluation keys encrypting ``T^i * s^2``.

    Component ``i`` is the pair ``(a_i, b_i = a_i*s + e_i + T^i*s^2)``:
    summing ``digit_i * b_i - (digit_i * a_i) * s`` over the base-T
    digits of a degree-2 ciphertext component reconstructs ``d2 * s^2``
    plus a small noise term, which is what lets
    :meth:`HEContext.multiply` fold the tensor product back into an
    ``(u, v)`` pair.  The components are long-lived key material — in
    the serving runtime they are pool operands whose products coalesce
    across client calls.
    """

    base: int
    components: Tuple[Tuple[Polynomial, Polynomial], ...]

    @property
    def digits(self) -> int:
        """Number of base-T digits the key can absorb."""
        return len(self.components)


@dataclass(frozen=True)
class HECiphertext:
    """An LPR ciphertext (u, v) encrypting Delta * m + noise.

    ``level`` counts the ciphertext-ciphertext multiplications on the
    deepest path that produced it (0 for a fresh encryption); additions
    and plaintext products keep the maximum of their inputs' levels.
    """

    u: Polynomial
    v: Polynomial
    level: int = 0

    def __add__(self, other: "HECiphertext") -> "HECiphertext":
        """Homomorphic addition: coefficient-wise on both components."""
        return HECiphertext(
            u=self.u + other.u,
            v=self.v + other.v,
            level=max(self.level, other.level),
        )


#: Auxiliary NTT rings for the exact integer tensor product, cached by
#: (n, bits) so every context over the same ring shares one root search.
_TENSOR_RINGS: Dict[Tuple[int, int], NTTParams] = {}


def _tensor_ring(params: NTTParams) -> NTTParams:
    """An NTT-friendly prime large enough for exact Z[x]/(x^n+1) products.

    The BFV tensor is computed over the *integers* (centered lifts of
    the ciphertext components) before the t/q rescale; reducing mod q
    first would destroy the scale arithmetic.  A single auxiliary prime
    Q with ``|coeff| < Q/2`` for every tensor coefficient — including
    the two-product sum d1 — makes the negacyclic NTT product exact
    after re-centering.
    """
    half = params.q // 2 + 1
    bound = 4 * params.n * half * half  # d1 sums two n-term products
    bits = bound.bit_length() + 1
    key = (params.n, bits)
    if key not in _TENSOR_RINGS:
        _TENSOR_RINGS[key] = NTTParams(
            n=params.n, q=find_ntt_prime(bits, params.n),
            name=f"tensor ring for n={params.n}, {bits}-bit",
        )
    return _TENSOR_RINGS[key]


class HEContext:
    """BFV-lite over Z_q[x]/(x^n + 1) with plaintext modulus ``t``."""

    def __init__(self, params: NTTParams, plaintext_modulus: int = 16,
                 noise_bound: int = 1, rng: Optional[random.Random] = None,
                 secret_weight: Optional[int] = None):
        if not params.negacyclic:
            raise ParameterError("HE uses the negacyclic ring x^n + 1")
        if plaintext_modulus < 2:
            raise ParameterError(
                f"plaintext modulus must be >= 2, got {plaintext_modulus}"
            )
        if params.q // plaintext_modulus < 4:
            raise ParameterError(
                f"q={params.q} leaves no noise room for t={plaintext_modulus}"
            )
        self.params = params
        self.t = plaintext_modulus
        self.delta = params.q // plaintext_modulus
        self.noise_bound = noise_bound
        self.rng = rng or random.Random()
        # Sparse ternary secrets (and encryption randomness): the
        # multiply noise is dominated by t * (k1*e2 + k2*e1), where the
        # k_i carry-polynomials scale with the secret's Hamming weight.
        # Capping the weight (64 is the classic sparse-key setting) is
        # what lets the 16-bit security level absorb a ciphertext
        # product; dense ternary would blow its budget 2x.
        if secret_weight is None:
            secret_weight = min(64, max(1, params.n // 4))
        if not 1 <= secret_weight <= params.n:
            raise ParameterError(
                f"secret weight must be in [1, {params.n}], got {secret_weight}"
            )
        self.secret_weight = secret_weight

    # -- key management ----------------------------------------------------

    def _small(self) -> Polynomial:
        return Polynomial.random_small(self.params, self.noise_bound, self.rng)

    def _sparse_ternary(self) -> Polynomial:
        """A ternary polynomial with exactly ``secret_weight`` nonzeros."""
        coeffs = [0] * self.params.n
        for index in self.rng.sample(range(self.params.n), self.secret_weight):
            coeffs[index] = 1 if self.rng.randrange(2) else -1
        return Polynomial(coeffs, self.params)

    def keygen(self) -> HEKeyPair:
        """Sample an LPR key pair (sparse ternary secret)."""
        a = Polynomial.random(self.params, self.rng)
        s = self._sparse_ternary()
        e = self._small()
        return HEKeyPair(a=a, b=a * s + e, s=s)

    def relin_keygen(self, key: HEKeyPair, *,
                     base: Optional[int] = None) -> RelinKey:
        """Sample base-T evaluation keys for ``key``'s secret.

        Component ``i`` encrypts ``T^i * s^2`` under ``s``; the default
        base keeps the decomposition at three digits (see
        :func:`default_relin_base`).
        """
        base = default_relin_base(self.params.q) if base is None else base
        digits = relin_digit_count(self.params.q, base)
        s_squared = key.s * key.s
        components = []
        power = 1
        for _ in range(digits):
            a_i = Polynomial.random(self.params, self.rng)
            e_i = self._small()
            b_i = a_i * key.s + e_i + power * s_squared
            components.append((a_i, b_i))
            power = power * base % self.params.q
        return RelinKey(base=base, components=tuple(components))

    # -- encryption ----------------------------------------------------------

    def _encode(self, message: Sequence[int]) -> Polynomial:
        if len(message) != self.params.n:
            raise ParameterError(
                f"message needs {self.params.n} coefficients, got {len(message)}"
            )
        return Polynomial([(m % self.t) * self.delta for m in message], self.params)

    def encrypt(self, key: HEKeyPair, message: Sequence[int]) -> HECiphertext:
        """Encrypt a Z_t message vector."""
        r = self._sparse_ternary()
        e1 = self._small()
        e2 = self._small()
        return HECiphertext(
            u=key.a * r + e1,
            v=key.b * r + e2 + self._encode(message),
        )

    def decrypt(self, key: HEKeyPair, ciphertext: HECiphertext) -> List[int]:
        """Round (v - u*s) / Delta to recover the Z_t message.

        The noisy coefficients are *centered* into (-q/2, q/2] before
        rounding, and the rounding is exact integer arithmetic
        (``(c + Delta//2) // Delta``): rounding the canonical [0, q)
        representatives with float ``round()`` mis-decodes coefficients
        whose noise sits exactly at the budget boundary (half-even ties
        resolve by message parity instead of noise magnitude).
        """
        noisy = ciphertext.v - ciphertext.u * key.s
        delta = self.delta
        half = delta // 2
        return [((c + half) // delta) % self.t for c in noisy.centered()]

    def noise_of(self, key: HEKeyPair, ciphertext: HECiphertext,
                 message: Sequence[int]) -> int:
        """Max |noise| of a ciphertext known to encrypt ``message``."""
        noisy = ciphertext.v - ciphertext.u * key.s - self._encode(message)
        return max(abs(c) for c in noisy.centered())

    @property
    def noise_budget(self) -> int:
        """Decryption is guaranteed while noise stays at or below this.

        ``(Delta - 1) // 2``: the intervals ``Delta*m ± budget`` must
        not touch, so for even ``Delta`` the last representable noise
        value ``Delta/2`` is ambiguous and lies *outside* the budget
        (the old ``Delta // 2`` bound overstated it by one there).
        """
        return (self.delta - 1) // 2

    # -- homomorphic operations -----------------------------------------------

    def add(self, a: HECiphertext, b: HECiphertext) -> HECiphertext:
        """Homomorphic addition (messages add in Z_t)."""
        return a + b

    def multiply_plain(self, ciphertext: HECiphertext,
                       plaintext: Sequence[int]) -> HECiphertext:
        """Multiply an encrypted message by a public Z_t polynomial.

        Both ciphertext components are multiplied by the (unscaled)
        plaintext polynomial — two negacyclic products, the exact
        workload BP-NTT accelerates server-side.
        """
        if len(plaintext) != self.params.n:
            raise ParameterError(
                f"plaintext needs {self.params.n} coefficients, got {len(plaintext)}"
            )
        p = Polynomial([m % self.t for m in plaintext], self.params)
        return HECiphertext(u=ciphertext.u * p, v=ciphertext.v * p,
                            level=ciphertext.level)

    # -- ciphertext multiplication -------------------------------------------

    def _lift(self, poly: Polynomial) -> List[int]:
        """Centered integer lift, re-reduced into the auxiliary ring."""
        big_q = _tensor_ring(self.params).q
        return [c % big_q for c in poly.centered()]

    def multiply_parts(self, ct1: HECiphertext,
                       ct2: HECiphertext) -> Tuple[Polynomial, Polynomial, Polynomial]:
        """The rescaled BFV tensor product ``(d0, d1, d2)`` of two ciphertexts.

        Over the integers (centered lifts), the product of the two
        decryption phases expands to ``d0 - d1*s + d2*s^2`` with

        - ``d0 = v1 * v2``,
        - ``d1 = u1 * v2 + u2 * v1``,
        - ``d2 = u1 * u2``

        (four negacyclic products — the constituent kernels the serving
        trail prices individually).  Each component is then scaled by
        ``t/q`` and rounded back into Z_q, which turns the ``Delta^2``
        message scale into ``Delta``.
        """
        aux = _tensor_ring(self.params)
        big_q = aux.q
        u1, v1, u2, v2 = map(self._lift, (ct1.u, ct1.v, ct2.u, ct2.v))
        d0 = polymul_negacyclic(v1, v2, aux)
        d2 = polymul_negacyclic(u1, u2, aux)
        d1 = [
            (x + y) % big_q
            for x, y in zip(polymul_negacyclic(u1, v2, aux),
                            polymul_negacyclic(u2, v1, aux))
        ]
        return tuple(self._rescale(d) for d in (d0, d1, d2))

    def degree_two_component(self, ct1: HECiphertext,
                             ct2: HECiphertext) -> Polynomial:
        """Just the rescaled ``d2 = u1 * u2`` tensor component.

        The serving adapter needs only d2 (its base-T digits are the
        relinearization payloads); computing the full tensor would
        waste three of the four products host-side.
        """
        aux = _tensor_ring(self.params)
        return self._rescale(
            polymul_negacyclic(self._lift(ct1.u), self._lift(ct2.u), aux)
        )

    def _rescale(self, coeffs: Sequence[int]) -> Polynomial:
        """Round ``t/q`` times an exact (aux-ring) tensor component into Z_q.

        The aux-ring coefficients are re-centered to their true integer
        values, then ``round(t * c / q)`` is taken with exact integer
        arithmetic (ties away from zero).
        """
        aux_q = _tensor_ring(self.params).q
        t, q = self.t, self.params.q
        out = []
        for c in coeffs:
            if c > aux_q // 2:
                c -= aux_q
            num = t * c
            if num >= 0:
                rounded = (2 * num + q) // (2 * q)
            else:
                rounded = -((2 * -num + q) // (2 * q))
            out.append(rounded % q)
        return Polynomial(out, self.params)

    def decompose(self, poly: Polynomial, base: int) -> List[Polynomial]:
        """Base-T digits of a polynomial's canonical coefficients.

        Returns ``digits`` polynomials with coefficients in ``[0, T)``
        satisfying ``sum(T^i * digit_i) == poly`` exactly — the
        decomposition the relinearization keys are built against.
        """
        digits = relin_digit_count(self.params.q, base)
        rows: List[List[int]] = [[] for _ in range(digits)]
        for c in poly.coeffs:
            for row in rows:
                row.append(c % base)
                c //= base
        return [Polynomial(row, self.params) for row in rows]

    def check_relin_key(self, relin_key: RelinKey) -> None:
        """Reject a relinearization key that cannot absorb this ring's d2.

        A key with fewer digits than ``relin_digit_count(q, base)``
        would silently drop the high digits of the degree-2 component.
        """
        needed = relin_digit_count(self.params.q, relin_key.base)
        if relin_key.digits != needed:
            raise ParameterError(
                f"relinearization key has {relin_key.digits} digits; base "
                f"{relin_key.base} needs {needed} for q={self.params.q}"
            )

    def multiply(self, ct1: HECiphertext, ct2: HECiphertext,
                 relin_key: RelinKey) -> HECiphertext:
        """Homomorphic product of two ciphertexts (messages multiply in Z_t).

        Tensor, rescale (:meth:`multiply_parts`), then relinearize: the
        base-T digits of the degree-2 component multiply the evaluation
        keys, folding ``d2 * s^2`` back into an ``(u, v)`` pair.  The
        result's :attr:`~HECiphertext.level` is one past the deeper
        input's.
        """
        self.check_relin_key(relin_key)
        d0, d1, d2 = self.multiply_parts(ct1, ct2)
        u, v = d1, d0
        for digit, (a_i, b_i) in zip(self.decompose(d2, relin_key.base),
                                     relin_key.components):
            u = u + digit * a_i
            v = v + digit * b_i
        return HECiphertext(u=u, v=v, level=max(ct1.level, ct2.level) + 1)

    def __repr__(self) -> str:
        return (
            f"HEContext({self.params!r}, t={self.t}, delta={self.delta}, "
            f"noise_bound={self.noise_bound})"
        )


@dataclass(frozen=True)
class DepthRecord:
    """One multiplicative level of a :func:`depth_profile` chain."""

    level: int
    noise: int
    budget: int
    correct: bool

    @property
    def budget_used(self) -> float:
        """Fraction of the noise budget this level consumed."""
        return self.noise / self.budget if self.budget else float("inf")

    @property
    def within_budget(self) -> bool:
        """True when this level is *guaranteed* good: decrypted correctly
        and inside the advertised budget.  (A level can decrypt
        correctly past the budget — the wrapped top message has ``q mod
        t`` extra positive-side slack — but that is luck, not depth.)"""
        return self.correct and self.noise <= self.budget


def format_depth_table(rows: Sequence[Tuple[str, DepthRecord]]) -> str:
    """Fixed-width noise-per-level table for ``(set name, record)`` rows.

    Shared by ``repro.cli hedepth`` and ``benchmarks/bench_he_depth.py``
    so the two surfaces cannot drift.
    """
    header = (f"{'Set':<10} {'Level':>5} {'Noise':>13} {'Budget':>13} "
              f"{'Used':>6} {'Within':>7}")
    lines = [header, "-" * len(header)]
    for name, record in rows:
        lines.append(
            f"{name:<10} {record.level:>5} {record.noise:>13,} "
            f"{record.budget:>13,} {min(record.budget_used, 9.99):>6.0%} "
            f"{'yes' if record.within_budget else 'NO':>7}"
        )
    return "\n".join(lines)


def depth_profile(context: HEContext, *, max_levels: int = 4,
                  relin_base: Optional[int] = None) -> List[DepthRecord]:
    """Noise per multiplicative level until the budget is exhausted.

    Runs a multiply chain — fresh random messages, each level one
    ciphertext-ciphertext product — measuring the actual noise against
    the expected (schoolbook mod-t) message after every level.  The
    chain stops after the first level that decrypts wrong or exceeds
    the budget, so the achievable depth is the count of records with
    ``within_budget``.  Uses ``context.rng`` throughout: seed it for a
    reproducible table.
    """
    from repro.ntt.transform import schoolbook_negacyclic

    key = context.keygen()
    relin = context.relin_keygen(key, base=relin_base)
    n, t = context.params.n, context.t
    message = [context.rng.randrange(t) for _ in range(n)]
    ct = context.encrypt(key, message)
    records = []
    for level in range(1, max_levels + 1):
        fresh = [context.rng.randrange(t) for _ in range(n)]
        ct = context.multiply(ct, context.encrypt(key, fresh), relin)
        message = schoolbook_negacyclic(message, fresh, t)
        noise = context.noise_of(key, ct, message)
        correct = context.decrypt(key, ct) == message
        record = DepthRecord(level=level, noise=noise,
                             budget=context.noise_budget, correct=correct)
        records.append(record)
        if not record.within_budget:
            break
    return records
