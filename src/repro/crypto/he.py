"""Toy leveled homomorphic encryption (BFV-lite) over the NTT ring.

The paper motivates BP-NTT with homomorphic encryption: the HE security
levels in §I (1024-point polynomials, 16/21/29-bit moduli) are exactly
the ``he-16bit/21bit/29bit`` parameter sets of this library.  This
module implements the operations whose cost is dominated by NTT-based
polynomial products:

- encryption / decryption with scale factor ``Delta = floor(q / t)``
  (plaintexts in Z_t[x]/(x^n + 1)),
- **homomorphic addition** (ciphertext + ciphertext),
- **plaintext multiplication** (ciphertext * plaintext polynomial),

i.e. a leveled additive scheme with plaintext products — the workhorse
of private aggregation pipelines.  Ciphertext-ciphertext multiplication
needs relinearization keys and is out of scope (the arithmetic it would
add is more of the same negacyclic products).

Noise budget: every operation adds noise; decryption succeeds while the
accumulated noise stays below ``Delta / 2``.  :meth:`HEContext.noise_of`
exposes the actual noise so tests can verify the budget arithmetic.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro.errors import ParameterError
from repro.ntt.params import NTTParams
from repro.ntt.polynomial import Polynomial


@dataclass(frozen=True)
class HEKeyPair:
    """Public key (a, b = a*s + e) and secret key s."""

    a: Polynomial
    b: Polynomial
    s: Polynomial


@dataclass(frozen=True)
class HECiphertext:
    """An LPR ciphertext (u, v) encrypting Delta * m + noise."""

    u: Polynomial
    v: Polynomial

    def __add__(self, other: "HECiphertext") -> "HECiphertext":
        """Homomorphic addition: coefficient-wise on both components."""
        return HECiphertext(u=self.u + other.u, v=self.v + other.v)


class HEContext:
    """BFV-lite over Z_q[x]/(x^n + 1) with plaintext modulus ``t``."""

    def __init__(self, params: NTTParams, plaintext_modulus: int = 16,
                 noise_bound: int = 1, rng: Optional[random.Random] = None):
        if not params.negacyclic:
            raise ParameterError("HE uses the negacyclic ring x^n + 1")
        if plaintext_modulus < 2:
            raise ParameterError(
                f"plaintext modulus must be >= 2, got {plaintext_modulus}"
            )
        if params.q // plaintext_modulus < 4:
            raise ParameterError(
                f"q={params.q} leaves no noise room for t={plaintext_modulus}"
            )
        self.params = params
        self.t = plaintext_modulus
        self.delta = params.q // plaintext_modulus
        self.noise_bound = noise_bound
        self.rng = rng or random.Random()

    # -- key management ----------------------------------------------------

    def _small(self) -> Polynomial:
        return Polynomial.random_small(self.params, self.noise_bound, self.rng)

    def keygen(self) -> HEKeyPair:
        """Sample an LPR key pair."""
        a = Polynomial.random(self.params, self.rng)
        s = self._small()
        e = self._small()
        return HEKeyPair(a=a, b=a * s + e, s=s)

    # -- encryption ----------------------------------------------------------

    def _encode(self, message: Sequence[int]) -> Polynomial:
        if len(message) != self.params.n:
            raise ParameterError(
                f"message needs {self.params.n} coefficients, got {len(message)}"
            )
        return Polynomial([(m % self.t) * self.delta for m in message], self.params)

    def encrypt(self, key: HEKeyPair, message: Sequence[int]) -> HECiphertext:
        """Encrypt a Z_t message vector."""
        r = self._small()
        e1 = self._small()
        e2 = self._small()
        return HECiphertext(
            u=key.a * r + e1,
            v=key.b * r + e2 + self._encode(message),
        )

    def decrypt(self, key: HEKeyPair, ciphertext: HECiphertext) -> List[int]:
        """Round (v - u*s) / Delta to recover the Z_t message."""
        noisy = ciphertext.v - ciphertext.u * key.s
        out = []
        for c in noisy.coeffs:
            out.append(round(c / self.delta) % self.t)
        return out

    def noise_of(self, key: HEKeyPair, ciphertext: HECiphertext,
                 message: Sequence[int]) -> int:
        """Max |noise| of a ciphertext known to encrypt ``message``."""
        noisy = ciphertext.v - ciphertext.u * key.s - self._encode(message)
        return max(abs(c) for c in noisy.centered())

    @property
    def noise_budget(self) -> int:
        """Decryption succeeds while noise stays below this."""
        return self.delta // 2

    # -- homomorphic operations -----------------------------------------------

    def add(self, a: HECiphertext, b: HECiphertext) -> HECiphertext:
        """Homomorphic addition (messages add in Z_t)."""
        return a + b

    def multiply_plain(self, ciphertext: HECiphertext,
                       plaintext: Sequence[int]) -> HECiphertext:
        """Multiply an encrypted message by a public Z_t polynomial.

        Both ciphertext components are multiplied by the (unscaled)
        plaintext polynomial — two negacyclic products, the exact
        workload BP-NTT accelerates server-side.
        """
        if len(plaintext) != self.params.n:
            raise ParameterError(
                f"plaintext needs {self.params.n} coefficients, got {len(plaintext)}"
            )
        p = Polynomial([m % self.t for m in plaintext], self.params)
        return HECiphertext(u=ciphertext.u * p, v=ciphertext.v * p)

    def __repr__(self) -> str:
        return (
            f"HEContext({self.params!r}, t={self.t}, delta={self.delta}, "
            f"noise_bound={self.noise_bound})"
        )
