"""The real CRYSTALS-Kyber ring: q = 3329, incomplete 7-layer NTT.

Kyber's modulus satisfies ``256 | q - 1`` but not ``512 | q - 1``, so a
full negacyclic 256-point NTT does not exist.  The scheme instead stops
one layer early: the transform maps Z_q[x]/(x^256 + 1) onto 128 rings
Z_q[x]/(x^2 - zeta_i), and products finish with a pairwise "base
multiplication" in those quadratic rings.

This is the exact transform of the Kyber specification (zeta = 17 is
the canonical primitive 256-th root).  It matters for the reproduction
because it shows how BP-NTT's flexible modular multiplier supports the
round-3 parameters: every operation below is a modular multiply / add /
subtract — precisely the repertoire the in-SRAM engine provides.
"""

from __future__ import annotations

from typing import List, Sequence

from repro.errors import ParameterError
from repro.utils.bitops import bit_reverse

KYBER_Q = 3329
KYBER_N = 256
KYBER_ROOT = 17  # primitive 256th root of unity mod q


def _zetas() -> List[int]:
    """The spec's zeta table: 17^brv7(k) mod q for k = 0..127."""
    return [pow(KYBER_ROOT, bit_reverse(k, 7), KYBER_Q) for k in range(128)]


ZETAS = _zetas()


def _check(poly: Sequence[int]) -> List[int]:
    if len(poly) != KYBER_N:
        raise ParameterError(f"Kyber polynomials have 256 coefficients, got {len(poly)}")
    return [c % KYBER_Q for c in poly]


def kyber_ntt(poly: Sequence[int]) -> List[int]:
    """Forward incomplete NTT (7 layers, 128 butterflies each)."""
    f = _check(poly)
    k = 1
    length = 128
    while length >= 2:
        start = 0
        while start < KYBER_N:
            zeta = ZETAS[k]
            k += 1
            for j in range(start, start + length):
                t = (zeta * f[j + length]) % KYBER_Q
                f[j + length] = (f[j] - t) % KYBER_Q
                f[j] = (f[j] + t) % KYBER_Q
            start += 2 * length
        length //= 2
    return f


def kyber_intt(poly: Sequence[int]) -> List[int]:
    """Inverse incomplete NTT, including the 128^-1 scaling."""
    f = _check(poly)
    k = 127
    length = 2
    while length <= 128:
        start = 0
        while start < KYBER_N:
            zeta = ZETAS[k]
            k -= 1
            for j in range(start, start + length):
                t = f[j]
                f[j] = (t + f[j + length]) % KYBER_Q
                f[j + length] = (zeta * (f[j + length] - t)) % KYBER_Q
            start += 2 * length
        length *= 2
    scale = pow(128, -1, KYBER_Q)
    return [(x * scale) % KYBER_Q for x in f]


def _basemul_pair(a0: int, a1: int, b0: int, b1: int, zeta: int) -> tuple:
    """Product in Z_q[x]/(x^2 - zeta): (a0 + a1 x)(b0 + b1 x)."""
    r0 = (a1 * b1 % KYBER_Q * zeta + a0 * b0) % KYBER_Q
    r1 = (a0 * b1 + a1 * b0) % KYBER_Q
    return r0, r1


def kyber_basemul(a_hat: Sequence[int], b_hat: Sequence[int]) -> List[int]:
    """Pointwise product in the 128 quadratic residue rings."""
    a = _check(a_hat)
    b = _check(b_hat)
    out = [0] * KYBER_N
    for i in range(64):
        zeta = ZETAS[64 + i]
        out[4 * i], out[4 * i + 1] = _basemul_pair(
            a[4 * i], a[4 * i + 1], b[4 * i], b[4 * i + 1], zeta
        )
        out[4 * i + 2], out[4 * i + 3] = _basemul_pair(
            a[4 * i + 2], a[4 * i + 3], b[4 * i + 2], b[4 * i + 3], KYBER_Q - zeta
        )
    return out


def kyber_polymul(a: Sequence[int], b: Sequence[int]) -> List[int]:
    """Full negacyclic product via NTT -> basemul -> INTT."""
    return kyber_intt(kyber_basemul(kyber_ntt(a), kyber_ntt(b)))
