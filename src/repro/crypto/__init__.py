"""Lattice-crypto kernels built on the library (the "generality" claim).

The paper motivates BP-NTT with the PQC and HE workloads whose inner
loop is negacyclic polynomial multiplication.  This package provides
executable versions of those workloads:

- :mod:`repro.crypto.rlwe`      — textbook R-LWE public-key encryption
  (the §II-A construction), usable with either the gold-model ring or
  the in-SRAM engine.
- :mod:`repro.crypto.kyber`     — the real CRYSTALS-Kyber ring
  (q = 3329): the *incomplete* 7-layer NTT with pairwise base
  multiplication, since 2n does not divide q - 1.
- :mod:`repro.crypto.dilithium` — CRYSTALS-Dilithium's full 8-layer NTT
  over q = 8380417.
- :mod:`repro.crypto.he`        — BFV-lite leveled HE over the 1024-point
  ``he-*`` rings: encryption, homomorphic addition, plaintext products,
  and relinearized ciphertext-ciphertext multiplication.
"""

from repro.crypto.dilithium import (
    DILITHIUM_Q,
    dilithium_intt,
    dilithium_ntt,
    dilithium_polymul,
)
from repro.crypto.he import (
    DepthRecord,
    HECiphertext,
    HEContext,
    HEKeyPair,
    RelinKey,
    default_relin_base,
    depth_profile,
    format_depth_table,
    relin_digit_count,
)
from repro.crypto.kyber import (
    KYBER_N,
    KYBER_Q,
    kyber_basemul,
    kyber_intt,
    kyber_ntt,
    kyber_polymul,
)
from repro.crypto.rlwe import RLWECiphertext, RLWEKeyPair, RLWEScheme

__all__ = [
    "DILITHIUM_Q",
    "DepthRecord",
    "HECiphertext",
    "HEContext",
    "HEKeyPair",
    "RelinKey",
    "default_relin_base",
    "depth_profile",
    "format_depth_table",
    "relin_digit_count",
    "dilithium_intt",
    "dilithium_ntt",
    "dilithium_polymul",
    "KYBER_N",
    "KYBER_Q",
    "kyber_basemul",
    "kyber_intt",
    "kyber_ntt",
    "kyber_polymul",
    "RLWECiphertext",
    "RLWEKeyPair",
    "RLWEScheme",
]
