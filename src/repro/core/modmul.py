"""Compile Algorithm 2 into Fig 4d instruction streams.

The twiddle factor ``A`` never touches the data array: its bits decide
*at compile time* which iterations emit the conditional-add block
("twiddle factor A is hidden in the control commands", §IV-D).  Only
``B`` (a coefficient row), ``Sum``, ``Carry``, two temporaries and the
modulus row participate at runtime — the six intermediate rows of
Fig 5(a).

Register choreography per iteration (scratch rows S=Sum, C=Carry,
T0/T1 temporaries, MOD modulus):

conditional add (twiddle bit set) — ``P += B``::

    T1 = S AND B          # c1
    T0 = S XOR B          # s1
    C  = C << 1           # Observation 1: tile MSB is 0
    S  = C XOR T0         # new Sum
    T0 = C AND T0         # c2
    C  = T1 OR T0         # new Carry (c1, c2 provably disjoint)

reduction — ``P = (P + m) >> 1`` with ``m = M or 0`` selected per tile
by the predicate latch::

    Check S[0]            # per-tile LSB -> predicate flags
    T1 = S AND M?         # c1   (M gated by flags)
    T0 = S XOR M?         # s1
    T0 = T0 >> 1          # Observation 2: tile LSB is 0
    S  = T0 XOR T1        # s2 parked in Sum (old Sum fully consumed)
    T0 = T0 AND T1        # c2
    T1 = C AND S          # c3
    S  = C XOR S          # new Sum
    C  = T0 OR T1         # new Carry

After ``width`` iterations the product sits in carry-save form
``(Sum, Carry)``; :func:`repro.core.addsub.emit_resolve` collapses it.
"""

from __future__ import annotations

from repro.core.layout import DataLayout
from repro.errors import ParameterError
from repro.sram.isa import (
    BinaryOp,
    Check,
    LogicBinary,
    ShiftDirection,
    ShiftRow,
    Unary,
    UnaryOp,
)
from repro.sram.program import Program


def emit_modmul(program: Program, layout: DataLayout, twiddle: int, b_row: int) -> None:
    """Emit ``(Sum, Carry) = twiddle * row[b_row] * R^-1 mod M`` (carry-save).

    ``twiddle`` is the Montgomery-scaled multiplier (``zeta * R mod M``);
    its bits are burned into the instruction stream.
    """
    if not 0 <= twiddle < (1 << layout.width):
        raise ParameterError(
            f"twiddle {twiddle} does not fit the {layout.width}-bit container"
        )
    s = layout.scratch
    program.begin_section("modmul")
    program.emit(Unary(UnaryOp.ZERO, s.sum))
    program.emit(Unary(UnaryOp.ZERO, s.carry))
    for i in range(layout.width):
        if (twiddle >> i) & 1:
            program.extend(
                [
                    LogicBinary(BinaryOp.AND, s.t1, s.sum, b_row),
                    LogicBinary(BinaryOp.XOR, s.t0, s.sum, b_row),
                    ShiftRow(s.carry, s.carry, ShiftDirection.LEFT),
                    LogicBinary(BinaryOp.XOR, s.sum, s.carry, s.t0),
                    LogicBinary(BinaryOp.AND, s.t0, s.carry, s.t0),
                    LogicBinary(BinaryOp.OR, s.carry, s.t1, s.t0),
                ]
            )
        program.extend(
            [
                Check(s.sum, bit_index=0),
                LogicBinary(BinaryOp.AND, s.t1, s.sum, s.mod, gate_operand1=True),
                LogicBinary(BinaryOp.XOR, s.t0, s.sum, s.mod, gate_operand1=True),
                ShiftRow(s.t0, s.t0, ShiftDirection.RIGHT),
                LogicBinary(BinaryOp.XOR, s.sum, s.t0, s.t1),
                LogicBinary(BinaryOp.AND, s.t0, s.t0, s.t1),
                LogicBinary(BinaryOp.AND, s.t1, s.carry, s.sum),
                LogicBinary(BinaryOp.XOR, s.sum, s.carry, s.sum),
                LogicBinary(BinaryOp.OR, s.carry, s.t0, s.t1),
            ]
        )
    program.end_section()


def modmul_instruction_count(width: int, twiddle: int) -> int:
    """Closed-form instruction count of :func:`emit_modmul`.

    Used by the analytical sweeps to predict cycle counts without
    compiling: 2 prologue ops, 9 reduction ops per iteration, 6 extra
    per set twiddle bit.
    """
    set_bits = bin(twiddle & ((1 << width) - 1)).count("1")
    return 2 + 9 * width + 6 * set_bits
