"""Multi-subarray ganging (§V-E: "larger subarray or interconnection of
multiple subarrays").

A :class:`BankedEngine` distributes independent polynomial batches over
every data subarray of a cache bank (or several banks of an LLC slice).
Because each subarray runs the *same* compiled program on its own data,
the bank completes ``num_subarrays x batch`` transforms in one kernel
latency — throughput scales with area while latency stays flat, which is
how BP-NTT covers workloads beyond one subarray's capacity.

All subarrays share one CTRL/CMD subarray (Fig 4b), so the program is
stored once; this model charges its storage to the bank's area (the
fourth subarray) but not per-transform energy, matching the paper's
accounting.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro.backends.base import BackendCapabilities, CompiledKernel
from repro.core.engine import BPNTTEngine, NTTRunReport, run_compiled_kernel
from repro.errors import CapacityError, ParameterError
from repro.ntt.params import NTTParams
from repro.sram.cache import BankGeometry
from repro.sram.cost import CostReport
from repro.sram.energy import TECH_45NM, TechnologyModel


@dataclass(frozen=True)
class BankRunReport:
    """Aggregate report for one banked kernel invocation."""

    kernel: str
    subarrays: int
    total_batch: int
    cycles: int
    energy_nj: float
    latency_s: float

    @property
    def throughput_kntt_per_s(self) -> float:
        """Transforms per second across the whole bank."""
        return self.total_batch / self.latency_s / 1e3

    @property
    def throughput_per_power(self) -> float:
        """KNTT/mJ across the bank."""
        return self.total_batch / (self.energy_nj * 1e-6) / 1e3


class BankedEngine:
    """Several BPNTTEngines advancing in lockstep under one CTRL stream."""

    def __init__(
        self,
        params: NTTParams,
        *,
        width: int = None,
        geometry: BankGeometry = BankGeometry(),
        tech: TechnologyModel = TECH_45NM,
    ):
        self.geometry = geometry
        self.engines: List[BPNTTEngine] = [
            BPNTTEngine(params, width=width, rows=geometry.rows,
                        cols=geometry.cols, tech=tech)
            for _ in range(geometry.subarrays_per_bank - 1)
        ]
        if not self.engines:  # pragma: no cover - geometry validates >= 2
            raise ParameterError("bank provides no data subarrays")
        self.params = params
        self.tech = tech

    @property
    def per_subarray_batch(self) -> int:
        """Polynomials per subarray."""
        return self.engines[0].batch

    @property
    def total_batch(self) -> int:
        """Polynomials per banked kernel invocation."""
        return self.per_subarray_batch * len(self.engines)

    @property
    def area_mm2(self) -> float:
        """Bank area including the shared CTRL/CMD subarray."""
        per = self.tech.subarray_area_mm2(self.geometry.rows, self.geometry.cols)
        return per * self.geometry.subarrays_per_bank

    def load(self, polynomials: Sequence[Sequence[int]]) -> None:
        """Distribute a workload across subarrays, round-robin by chunk."""
        if len(polynomials) > self.total_batch:
            raise CapacityError(
                f"{len(polynomials)} polynomials exceed bank capacity "
                f"{self.total_batch}"
            )
        chunk = self.per_subarray_batch
        for index, engine in enumerate(self.engines):
            engine.load(list(polynomials[index * chunk:(index + 1) * chunk]))

    def results(self) -> List[List[int]]:
        """Concatenated per-subarray results in load order."""
        out: List[List[int]] = []
        for engine in self.engines:
            out.extend(engine.results())
        return out

    def _merge(self, kernel: str, reports: List[NTTRunReport]) -> BankRunReport:
        # Subarrays run concurrently: latency is the max (identical
        # programs make them equal); energy sums.
        return BankRunReport(
            kernel=kernel,
            subarrays=len(reports),
            total_batch=sum(r.batch for r in reports),
            cycles=max(r.cycles for r in reports),
            energy_nj=sum(r.energy_nj for r in reports),
            latency_s=max(r.latency_s for r in reports),
        )

    def ntt(self) -> BankRunReport:
        """Forward NTT on every subarray."""
        return self._merge("ntt", [engine.ntt() for engine in self.engines])

    def intt(self) -> BankRunReport:
        """Inverse NTT on every subarray."""
        return self._merge("intt", [engine.intt() for engine in self.engines])

    def pointwise_multiply(self, other_hat: Sequence[int]) -> BankRunReport:
        """Pointwise multiply every subarray's batch by one fixed polynomial.

        All subarrays share the same compiled constants, so the program
        is stored once in CTRL/CMD, exactly like the NTT kernels.
        """
        return self._merge(
            "pointwise",
            [engine.pointwise_multiply(other_hat) for engine in self.engines],
        )

    def polymul_with_hat(self, other_hat: Sequence[int]) -> BankRunReport:
        """As :meth:`polymul_with`, with the multiplier already in NTT
        domain (transformed once, shared by every subarray)."""
        return self._merge(
            "polymul",
            [engine.polymul_with_hat(other_hat) for engine in self.engines],
        )

    def polymul_with(self, other: Sequence[int]) -> BankRunReport:
        """Full negacyclic product of every slot with a fixed polynomial.

        The multiplier is transformed once on the host and shared by
        every subarray (they all compile the same pointwise constants).
        """
        from repro.ntt.transform import ntt_negacyclic

        return self.polymul_with_hat(
            ntt_negacyclic(list(other), self.params, self.engines[0].twiddle_table)
        )

    # -- the execution-backend protocol -------------------------------------
    #
    # A bank is the "sram" backend at subarrays > 1: same contract as
    # BPNTTEngine, with capacity and energy scaled by the gang width.

    backend_name = "sram"

    def capabilities(self) -> BackendCapabilities:
        """Backend-protocol facts for the whole bank."""
        return BackendCapabilities(
            name=self.backend_name,
            description=(f"bitline-accurate interpreter, {len(self.engines)} "
                         "data subarrays in lockstep"),
            batch=self.total_batch,
            stateful=True,
        )

    def compile(self, op: str, operand: Optional[Sequence[int]] = None) -> CompiledKernel:
        """One handle for the whole bank (the CTRL/CMD subarray stores
        the program once; subarray 0's cache is the bank's)."""
        return self.engines[0].compile(op, operand)

    def execute(self, kernel: CompiledKernel,
                payloads: Sequence[Sequence[int]]) -> List[List[int]]:
        """Distribute ``payloads``, run the kernel bank-wide, read back."""
        return run_compiled_kernel(self, kernel, payloads)

    def profile(self, kernel: CompiledKernel) -> CostReport:
        """One subarray's static price, replicated across the gang."""
        return self.engines[0].profile(kernel).replicate(len(self.engines))

    def __repr__(self) -> str:
        return (
            f"BankedEngine({self.params!r}, {len(self.engines)} subarrays x "
            f"batch {self.per_subarray_batch})"
        )


def subarrays_needed(total_transforms: int, per_subarray_batch: int) -> int:
    """Data subarrays required to run a workload in one kernel latency."""
    if total_transforms <= 0 or per_subarray_batch <= 0:
        raise ParameterError("counts must be positive")
    return math.ceil(total_transforms / per_subarray_batch)
