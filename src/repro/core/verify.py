"""Differential verification campaigns (the §V-A validation machinery).

The paper validates the bit-parallel modular multiplication "for various
bitwidths" through simulation.  This module packages that methodology as
a reusable harness: randomized campaigns that run the same computation
through up to three independent implementations —

1. the functional Algorithm 2 (:func:`repro.mont.bitparallel.bp_modmul`),
2. the compiled microcode on the subarray simulator,
3. the mathematical definition (``a * b * R^-1 mod M``),

— and report every disagreement with a reproducible seed.  The engine
campaign does the same at the NTT level against the gold transform.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import List, Optional

from repro.core.addsub import emit_cond_subtract, emit_resolve
from repro.core.engine import BPNTTEngine
from repro.core.layout import DataLayout
from repro.core.modmul import emit_modmul
from repro.errors import ParameterError
from repro.mont.bitparallel import bp_modmul, montgomery_expected, safe_modulus_bound
from repro.ntt.params import NTTParams
from repro.ntt.transform import ntt_negacyclic
from repro.sram.executor import Executor
from repro.sram.program import Program
from repro.sram.subarray import SRAMSubarray
from repro.utils.primes import find_ntt_prime


@dataclass(frozen=True)
class Mismatch:
    """One disagreement between implementations."""

    description: str
    seed: int


@dataclass
class CampaignReport:
    """Outcome of one verification campaign."""

    name: str
    trials: int = 0
    mismatches: List[Mismatch] = field(default_factory=list)

    @property
    def passed(self) -> bool:
        return not self.mismatches

    def record(self, description: str, seed: int) -> None:
        self.mismatches.append(Mismatch(description, seed))

    def __repr__(self) -> str:
        status = "PASS" if self.passed else f"FAIL({len(self.mismatches)})"
        return f"CampaignReport({self.name!r}, trials={self.trials}, {status})"


def verify_modmul_widths(widths=(4, 6, 8, 12, 16, 24, 32), trials_per_width: int = 50,
                         seed: int = 0, run_in_sram: bool = True) -> CampaignReport:
    """Differentially test Algorithm 2 across bitwidths.

    For each width a random odd modulus under the safety bound is drawn,
    then ``trials_per_width`` random operand pairs are pushed through the
    functional model, (optionally) the compiled microcode, and the
    Montgomery definition.
    """
    report = CampaignReport(name="modmul-widths")
    rng = random.Random(seed)
    for width in widths:
        if width <= 3:
            raise ParameterError(f"Algorithm 2 needs width > 3 for a useful modulus, got {width}")
        modulus = (rng.randrange(3, safe_modulus_bound(width)) | 1)
        layout = None
        executor = None
        if run_in_sram:
            layout = DataLayout(16, 4 * width, width, order=1)
            subarray = SRAMSubarray(16, layout.used_cols, width)
            executor = Executor(subarray)
            subarray.broadcast_word(layout.scratch.mod, modulus)
        for _ in range(trials_per_width):
            report.trials += 1
            a = rng.randrange(modulus)
            b = rng.randrange(modulus)
            expected = montgomery_expected(a, b, modulus, width)
            functional = bp_modmul(a, b, modulus, width)
            if functional != expected:
                report.record(
                    f"functional w={width} M={modulus} a={a} b={b}: "
                    f"{functional} != {expected}",
                    seed,
                )
            if executor is not None:
                subarray = executor.subarray
                subarray.write_word(0, 0, b)
                program = Program("verify")
                emit_modmul(program, layout, a, 0)
                emit_resolve(program, layout)
                emit_cond_subtract(program, layout, layout.scratch.sum)
                subarray.reset_peripherals()
                executor.run(program)
                in_sram = subarray.read_word(layout.scratch.sum, 0)
                if in_sram != expected:
                    report.record(
                        f"in-SRAM w={width} M={modulus} a={a} b={b}: "
                        f"{in_sram} != {expected}",
                        seed,
                    )
    return report


def verify_backend_results(backend: str = "model", trials_per_config: int = 1,
                           seed: int = 0) -> CampaignReport:
    """Differentially test a registered execution backend against gold.

    Every op of the named backend (resolved through the
    :mod:`repro.backends` registry) runs a random full batch on two
    small rings; results must match the gold transforms and the
    invocation must profile to a positive cycle count.
    """
    from repro.backends import create_backend
    from repro.ntt.transform import intt_negacyclic, polymul_negacyclic

    configs = [NTTParams(n=8, q=17), NTTParams(n=16, q=97)]
    report = CampaignReport(name=f"backend-{backend}")
    rng = random.Random(seed)
    for params in configs:
        width = max(8, params.coeff_bits + 1)
        impl = create_backend(
            backend, params, width=width,
            rows=max(32, params.n + 8), cols=4 * width,
        )
        batch = impl.capabilities().batch
        for op in ("ntt", "intt", "polymul"):
            operand = None
            if op == "polymul":
                operand = [rng.randrange(params.q) for _ in range(params.n)]
            kernel = impl.compile(op, operand)
            for _ in range(trials_per_config):
                report.trials += 1
                payloads = [
                    [rng.randrange(params.q) for _ in range(params.n)]
                    for _ in range(batch)
                ]
                results = impl.execute(kernel, payloads)
                if op == "ntt":
                    expected = [ntt_negacyclic(p, params) for p in payloads]
                elif op == "intt":
                    expected = [intt_negacyclic(p, params) for p in payloads]
                else:
                    expected = [
                        polymul_negacyclic(p, operand, params) for p in payloads
                    ]
                if [list(r) for r in results] != expected:
                    report.record(f"{backend} {op} mismatch {params!r}", seed)
                if impl.profile(kernel).cycles <= 0:
                    report.record(f"{backend} {op} priced at zero cycles", seed)
    return report


def verify_engine_roundtrips(configs: Optional[List[NTTParams]] = None,
                             trials_per_config: int = 2,
                             seed: int = 0) -> CampaignReport:
    """Differentially test the engine's NTT/INTT against the gold model."""
    if configs is None:
        configs = [
            NTTParams(n=8, q=17),
            NTTParams(n=16, q=97),
            NTTParams(n=32, q=find_ntt_prime(10, 32)),
        ]
    report = CampaignReport(name="engine-roundtrips")
    rng = random.Random(seed)
    for params in configs:
        width = max(8, params.coeff_bits + 1)
        rows = max(32, params.n + 8)
        engine = BPNTTEngine(params, width=width, rows=rows, cols=4 * width)
        for _ in range(trials_per_config):
            report.trials += 1
            polys = [
                [rng.randrange(params.q) for _ in range(params.n)]
                for _ in range(engine.batch)
            ]
            engine.load(polys)
            engine.ntt()
            expected = [ntt_negacyclic(p, params) for p in polys]
            if engine.results() != expected:
                report.record(f"forward mismatch {params!r}", seed)
                continue
            engine.intt()
            if engine.results() != polys:
                report.record(f"roundtrip mismatch {params!r}", seed)
    return report
