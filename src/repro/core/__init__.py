"""BP-NTT: the paper's primary contribution.

This package compiles the Cooley–Tukey NTT (and its Gentleman–Sande
inverse) into Fig 4d instruction streams executed on the in-SRAM
substrate, using the bit-parallel Montgomery modular multiplication of
Algorithm 2 and the tile-based "implicit shift" data organization of
Fig 5(a).

Public entry point: :class:`repro.core.engine.BPNTTEngine`.
"""

from repro.core.engine import BPNTTEngine, NTTRunReport
from repro.core.layout import DataLayout, ScratchRows
from repro.core.tiles import CapacityReport, capacity_report, container_width

__all__ = [
    "BPNTTEngine",
    "NTTRunReport",
    "DataLayout",
    "ScratchRows",
    "CapacityReport",
    "capacity_report",
    "container_width",
]
