"""Butterfly microcode (Algorithm 1 lines 6-8 and the GS mirror).

Row choreography is the delicate part: the six scratch rows must cover
the Montgomery product, carry resolution, canonicalization, the modular
add/sub pair, and (in spill layouts) operand staging — without any
in-flight value being clobbered.  The ownership timeline is spelled out
in each emitter.

Cooley–Tukey (forward)::

    t        = zeta * a[k]          # modmul -> (Sum, Carry); resolve -> Sum
    a[k]     = a[j] - t             # computed in Carry (free after resolve)
    a[j]     = a[j] + t             # computed in landing / in place

Gentleman–Sande (inverse)::

    s        = a[j] + a[k]          # computed in Sum
    d        = a[j] - a[k]          # computed in landing (modmul's B!)
    a[j]     = s                    # stored before modmul clobbers Sum
    a[k]     = zeta * d             # modmul(B=landing) -> resolve -> Sum
"""

from __future__ import annotations

from repro.core.addsub import (
    emit_cond_subtract,
    emit_fetch,
    emit_mod_add,
    emit_mod_sub,
    emit_resolve,
    emit_store,
)
from repro.core.layout import DataLayout
from repro.core.modmul import emit_modmul
from repro.sram.program import Program


def emit_ct_butterfly(program: Program, layout: DataLayout, j: int, k: int,
                      twiddle: int) -> None:
    """Forward (Cooley–Tukey) butterfly on coefficients ``j`` and ``k``.

    ``twiddle`` is the Montgomery-scaled zeta.  Works for resident and
    spill layouts; all slots of the batch execute in lockstep.
    """
    s = layout.scratch
    loc_j = layout.locate(j)
    loc_k = layout.locate(k)
    # t = zeta * a[k] * R^-1: B is readable from its own row even when
    # spilled only in a resident layout; spilled operands slide onto the
    # base tile first (reads of foreign-tile columns are harmless — only
    # writes must be gated).
    b_row = emit_fetch(program, layout, s.landing, loc_k.row, loc_k.tile_offset)
    emit_modmul(program, layout, twiddle, b_row)
    emit_resolve(program, layout)            # t -> Sum; Carry becomes free
    emit_cond_subtract(program, layout, s.sum)
    # u = a[j]: the landing row is free again (B fully consumed).
    u_row = emit_fetch(program, layout, s.landing, loc_j.row, loc_j.tile_offset)
    # a[k] = u - t, staged in the free Carry row.
    emit_mod_sub(program, layout, s.carry, u_row, s.sum)
    # a[j] = u + t.  In resident layouts this can land in a[j]'s row
    # directly; spill layouts stage in the landing row (reads precede the
    # writeback inside each instruction, so dst == u_row is fine).
    add_dst = loc_j.row if not layout.uses_spill else s.landing
    emit_mod_add(program, layout, add_dst, u_row, s.sum)
    if layout.uses_spill:
        emit_store(program, layout, s.landing, loc_j.row, loc_j.tile_offset, s.sum)
    emit_store(program, layout, s.carry, loc_k.row, loc_k.tile_offset, s.landing)


def emit_gs_butterfly(program: Program, layout: DataLayout, j: int, k: int,
                      twiddle: int) -> None:
    """Inverse (Gentleman–Sande) butterfly on coefficients ``j`` and ``k``."""
    s = layout.scratch
    loc_j = layout.locate(j)
    loc_k = layout.locate(k)
    # Stage spilled operands: u may use the (currently free) Carry row,
    # v uses the landing row because it must survive the modmul.
    u_row = emit_fetch(program, layout, s.carry, loc_j.row, loc_j.tile_offset)
    v_row = emit_fetch(program, layout, s.landing, loc_k.row, loc_k.tile_offset)
    # s = u + v staged in Sum (free scratch before the modmul).
    emit_mod_add(program, layout, s.sum, u_row, v_row)
    # d = u - v staged in the landing row (it becomes the modmul's B).
    emit_mod_sub(program, layout, s.landing, u_row, v_row)
    # Commit a[j] = s before the modmul reuses Sum.  The Carry row is
    # free now (u consumed) and serves as the spill shuttle.
    emit_store(program, layout, s.sum, loc_j.row, loc_j.tile_offset, s.carry)
    # a[k] = zeta * d.
    emit_modmul(program, layout, twiddle, s.landing)
    emit_resolve(program, layout)
    emit_cond_subtract(program, layout, s.sum)
    emit_store(program, layout, s.sum, loc_k.row, loc_k.tile_offset, s.landing)


def emit_coefficient_scale(program: Program, layout: DataLayout, index: int,
                           scale: int) -> None:
    """Multiply one coefficient by a compile-time constant (INTT n^-1).

    ``scale`` must already be Montgomery-scaled (``value * R mod M``).
    """
    s = layout.scratch
    loc = layout.locate(index)
    b_row = emit_fetch(program, layout, s.landing, loc.row, loc.tile_offset)
    emit_modmul(program, layout, scale, b_row)
    emit_resolve(program, layout)
    emit_cond_subtract(program, layout, s.sum)
    emit_store(program, layout, s.sum, loc.row, loc.tile_offset, s.landing)
