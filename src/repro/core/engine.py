"""BPNTTEngine — the public face of the accelerator.

Wraps a subarray + layout + compiled programs behind a polynomial-level
API: load a batch, run ``ntt()`` / ``intt()`` / ``polymul_pointwise()``,
read results, and collect a :class:`NTTRunReport` with the cycle,
latency, energy and derived Table-I metrics.

The engine also implements the :class:`repro.backends.base.Backend`
protocol (``capabilities`` / ``compile`` / ``execute`` / ``profile``),
which is how the serving pool drives it through the backend registry.

Example (a small ring so the doctest compiles in milliseconds):

    >>> from repro.core.engine import BPNTTEngine
    >>> from repro.ntt.params import NTTParams
    >>> from repro.ntt.transform import ntt_negacyclic
    >>> params = NTTParams(n=8, q=17)
    >>> engine = BPNTTEngine(params, width=8, rows=32, cols=32)
    >>> polys = [[i % params.q for i in range(params.n)]] * engine.batch
    >>> engine.load(polys)
    >>> report = engine.ntt()
    >>> engine.results() == [ntt_negacyclic(p, params) for p in polys]
    True
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro.backends.base import BackendCapabilities, CompiledKernel, KERNEL_OPS, price_programs
from repro.core.layout import DataLayout
from repro.core.scheduler import compile_intt, compile_ntt, compile_pointwise_mul
from repro.core.tiles import container_width
from repro.errors import ParameterError, VerificationError
from repro.ntt.params import NTTParams
from repro.ntt.twiddles import TwiddleTable
from repro.sram.cost import CostReport
from repro.sram.energy import TECH_45NM, TechnologyModel
from repro.sram.executor import ExecutionStats, Executor
from repro.sram.program import Program
from repro.sram.subarray import SRAMSubarray


@dataclass(frozen=True)
class NTTRunReport:
    """Performance report for one kernel execution (whole batch)."""

    kernel: str
    batch: int
    cycles: int
    instructions: int
    shift_count: int
    energy_nj: float
    latency_s: float
    section_cycles: dict

    @property
    def throughput_kntt_per_s(self) -> float:
        """Batch transforms per second, in KNTT/s (Table I units)."""
        return self.batch / self.latency_s / 1e3

    @property
    def energy_per_ntt_nj(self) -> float:
        """Energy divided across the batch."""
        return self.energy_nj / self.batch

    @property
    def power_w(self) -> float:
        """Average power: batch energy over batch latency."""
        return self.energy_nj * 1e-9 / self.latency_s

    def throughput_per_area(self, area_mm2: float) -> float:
        """KNTT/s per mm^2 — Table I's TA column."""
        return self.throughput_kntt_per_s / area_mm2

    @property
    def throughput_per_power(self) -> float:
        """KNTT per mJ — Table I's TP column (= batch / batch energy)."""
        return self.batch / (self.energy_nj * 1e-6) / 1e3

    @classmethod
    def from_cost(cls, kernel: str, batch: int, cost: CostReport) -> "NTTRunReport":
        """Build a run report from the shared cost report (the single
        place pj->nj and cycles->seconds are derived)."""
        return cls(
            kernel=kernel,
            batch=batch,
            cycles=cost.cycles,
            instructions=cost.instructions,
            shift_count=cost.shift_count,
            energy_nj=cost.energy_nj,
            latency_s=cost.latency_s,
            section_cycles=dict(cost.section_cycles),
        )


def run_compiled_kernel(engine, kernel: CompiledKernel,
                        payloads: Sequence[Sequence[int]]) -> List[List[int]]:
    """Load ``payloads``, dispatch one compiled kernel, read back the
    live slots — the one ``Backend.execute`` body shared by
    :class:`BPNTTEngine` and the banked engine (anything exposing
    ``load``/``ntt``/``intt``/``polymul_with_hat``/``results``)."""
    engine.load(payloads)
    if kernel.op == "ntt":
        engine.ntt()
    elif kernel.op == "intt":
        engine.intt()
    else:
        engine.polymul_with_hat(list(kernel.operand_hat))
    return engine.results()[: len(payloads)]


class BPNTTEngine:
    """One subarray configured as a batched NTT accelerator."""

    def __init__(
        self,
        params: NTTParams,
        *,
        width: Optional[int] = None,
        rows: int = 256,
        cols: int = 256,
        tech: TechnologyModel = TECH_45NM,
    ):
        if not params.negacyclic:
            raise ParameterError("the in-SRAM engine implements negacyclic rings")
        self.params = params
        self.width = width or container_width(params.q)
        if self.width > cols:
            raise ParameterError(
                f"container width {self.width} exceeds subarray columns {cols}"
            )
        self.tech = tech
        self.physical_cols = cols
        self.layout = DataLayout(rows, cols, self.width, params.n)
        # The subarray is built over the *used* columns; leftover columns
        # exist physically (and are charged in the area model) but hold
        # no tiles.
        self.subarray = SRAMSubarray(rows, self.layout.used_cols, self.width)
        self.executor = Executor(self.subarray, tech)
        self._table = TwiddleTable(params)
        self._programs = {}
        self._kernels = {}
        self._loaded = False
        self.subarray.broadcast_word(self.layout.scratch.mod, params.q)

    # -- capacity ---------------------------------------------------------

    @property
    def batch(self) -> int:
        """Polynomials processed per kernel invocation."""
        return self.layout.batch

    @property
    def twiddle_table(self) -> TwiddleTable:
        """The engine's precomputed twiddles (shared with callers that
        need host-side transforms, e.g. the serving pool)."""
        return self._table

    @property
    def area_mm2(self) -> float:
        """Silicon area of the (physical) subarray."""
        return self.tech.subarray_area_mm2(self.layout.rows, self.physical_cols)

    # -- data movement ----------------------------------------------------

    def load(self, polynomials: Sequence[Sequence[int]]) -> None:
        """Host-write a batch of polynomials into the subarray.

        Fewer than ``batch`` polynomials leaves the remaining slots
        zero-filled ("place coefficients from other polynomials in unused
        rows" is the paper's suggestion for the converse case).
        """
        if len(polynomials) > self.batch:
            raise ParameterError(
                f"{len(polynomials)} polynomials exceed the batch capacity {self.batch}"
            )
        q = self.params.q
        n = self.params.n
        for slot in range(self.batch):
            coeffs = polynomials[slot] if slot < len(polynomials) else [0] * n
            if len(coeffs) != n:
                raise ParameterError(
                    f"polynomial {slot} has {len(coeffs)} coefficients, expected {n}"
                )
            for index, coeff in enumerate(coeffs):
                loc = self.layout.locate(index)
                tile = self.layout.tile_of(slot, index)
                self.subarray.write_word(loc.row, tile, coeff % q)
        self._loaded = True

    def results(self) -> List[List[int]]:
        """Read every slot's polynomial back out of the subarray."""
        out = []
        for slot in range(self.batch):
            coeffs = []
            for index in range(self.params.n):
                loc = self.layout.locate(index)
                tile = self.layout.tile_of(slot, index)
                coeffs.append(self.subarray.read_word(loc.row, tile))
            out.append(coeffs)
        return out

    # -- kernels -----------------------------------------------------------

    def compiled_program(self, kernel: str) -> Program:
        """The cached instruction stream for ``"ntt"`` or ``"intt"``.

        Compilation happens once per engine; the CTRL/CMD subarray
        stores one program per kernel regardless of how many batches it
        serves (the serving pool leans on this for program reuse).
        """
        if kernel not in self._programs:
            if kernel == "ntt":
                self._programs[kernel] = compile_ntt(self.layout, self.params, self._table)
            elif kernel == "intt":
                self._programs[kernel] = compile_intt(self.layout, self.params, self._table)
            else:
                raise ParameterError(f"unknown kernel {kernel!r}")
        return self._programs[kernel]

    _get_program = compiled_program  # backwards-compatible alias

    def pointwise_program(self, other_hat: Sequence[int]) -> Program:
        """Cached pointwise-multiply program for one multiplier polynomial.

        The multiplier's (NTT-domain) coefficients are baked into the
        instruction stream as compile-time constants, so the cache is
        keyed by the canonical coefficient tuple.  Server-side traffic
        multiplies many batches by the same fixed polynomial (a public
        key, a plaintext operand), making recompilation the hot path
        this cache removes.
        """
        q = self.params.q
        key = ("pointwise", tuple(c % q for c in other_hat))
        if key not in self._programs:
            self._programs[key] = compile_pointwise_mul(
                self.layout, self.params, [c % q for c in other_hat]
            )
        return self._programs[key]

    def _execute(self, program: Program) -> ExecutionStats:
        if not self._loaded:
            raise ParameterError("no data loaded; call load() first")
        self.subarray.reset_peripherals()
        return self.executor.run(program)

    def _run(self, program: Program, kernel: str) -> NTTRunReport:
        return self._report(kernel, self._execute(program))

    def _report(self, kernel: str, stats: ExecutionStats) -> NTTRunReport:
        return NTTRunReport.from_cost(
            kernel, self.batch, CostReport.from_stats(stats, self.tech)
        )

    def ntt(self) -> NTTRunReport:
        """Run the forward NTT over the loaded batch (in place)."""
        return self._run(self.compiled_program("ntt"), "ntt")

    def intt(self) -> NTTRunReport:
        """Run the inverse NTT over the loaded batch (in place)."""
        return self._run(self.compiled_program("intt"), "intt")

    def pointwise_multiply(self, other_hat: Sequence[int]) -> NTTRunReport:
        """Multiply the (NTT-domain) batch pointwise by a fixed polynomial."""
        return self._run(self.pointwise_program(other_hat), "pointwise")

    def polymul_with_hat(self, other_hat: Sequence[int]) -> NTTRunReport:
        """As :meth:`polymul_with`, with the multiplier already in NTT
        domain (lets callers transform it once for many engines)."""
        stats = ExecutionStats.merge(
            self._execute(self.compiled_program("ntt")),
            self._execute(self.pointwise_program(other_hat)),
            self._execute(self.compiled_program("intt")),
        )
        return self._report("polymul", stats)

    def polymul_with(self, other: Sequence[int]) -> NTTRunReport:
        """Full negacyclic product of every slot with a fixed polynomial.

        Runs forward NTT, pointwise multiply by ``NTT(other)`` and the
        inverse NTT; returns a merged report.
        """
        from repro.ntt.transform import ntt_negacyclic

        return self.polymul_with_hat(
            ntt_negacyclic(list(other), self.params, self._table)
        )

    # -- the execution-backend protocol -------------------------------------
    #
    # One subarray *is* the reference "sram" backend: the registry's
    # factory (repro.backends.sram) hands instances of this class (or
    # BankedEngine) straight to the serving pool.

    backend_name = "sram"

    def capabilities(self) -> BackendCapabilities:
        """Backend-protocol facts: exact interpreter, one lane per instance."""
        return BackendCapabilities(
            name=self.backend_name,
            description="bitline-accurate subarray interpreter (exact, slow)",
            batch=self.batch,
            stateful=True,
        )

    def compile(self, op: str, operand: Optional[Sequence[int]] = None) -> CompiledKernel:
        """The cached backend handle for one ``(op, operand)`` kernel.

        For ``polymul`` the operand is forward-transformed once here and
        its NTT baked into the handle, so every later batch skips the
        host transform and reuses the compiled pointwise program.
        """
        q = self.params.q
        canonical = None if operand is None else tuple(c % q for c in operand)
        cache_key = (op, canonical)
        if cache_key in self._kernels:
            return self._kernels[cache_key]
        if op in ("ntt", "intt"):
            if operand is not None:
                raise ParameterError(f"{op} kernels take no second operand")
            kernel = CompiledKernel(
                op=op, operand=None, operand_hat=None,
                programs=(self.compiled_program(op),),
            )
        elif op == "polymul":
            if canonical is None:
                raise ParameterError("polymul kernels need a second operand")
            from repro.ntt.transform import ntt_negacyclic

            hat = tuple(ntt_negacyclic(list(canonical), self.params, self._table))
            kernel = CompiledKernel(
                op=op, operand=canonical, operand_hat=hat,
                programs=(
                    self.compiled_program("ntt"),
                    self.pointwise_program(list(hat)),
                    self.compiled_program("intt"),
                ),
            )
        else:
            raise ParameterError(f"unknown op {op!r}; expected one of {KERNEL_OPS}")
        self._kernels[cache_key] = kernel
        return kernel

    def execute(self, kernel: CompiledKernel,
                payloads: Sequence[Sequence[int]]) -> List[List[int]]:
        """Load ``payloads``, interpret the kernel, read back the live slots."""
        return run_compiled_kernel(self, kernel, payloads)

    def profile(self, kernel: CompiledKernel) -> CostReport:
        """Static price of one invocation (identical to executing it)."""
        return price_programs(kernel.programs, self.tech)

    # -- verification -------------------------------------------------------

    def verify_against_gold(self, inputs: Sequence[Sequence[int]]) -> None:
        """Assert the subarray contents equal ``NTT(inputs)`` (gold model).

        Intended for tests and examples: call after :meth:`ntt` with the
        polynomials originally loaded.
        """
        from repro.ntt.transform import ntt_negacyclic

        measured = self.results()
        for slot, coeffs in enumerate(inputs):
            expected = ntt_negacyclic(list(coeffs), self.params, self._table)
            if measured[slot] != expected:
                raise VerificationError(
                    f"slot {slot} disagrees with the gold model "
                    f"(first mismatch at index "
                    f"{next(i for i, (a, b) in enumerate(zip(measured[slot], expected)) if a != b)})"
                )

    def __repr__(self) -> str:
        return (
            f"BPNTTEngine({self.params!r}, width={self.width}, "
            f"batch={self.batch}, spill={self.layout.uses_spill})"
        )
