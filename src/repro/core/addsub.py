"""Carry resolution, modular add/sub, and spill data movement.

These are the butterfly's non-multiplicative pieces (Algorithm 1 lines
7-8).  Additions use the sense-amp latch as the carry register: a
:class:`~repro.sram.isa.BinaryPair` performs the half-adder layer and
each :class:`~repro.sram.isa.CarryStep` ripples the latched carries one
position — ``width`` rounds complete a full addition *and* deposit the
adder carry-out in the per-tile carry-out register, which is exactly the
``>=`` predicate conditional subtraction needs.

The "implicit shift" of §IV-E is visible here as an absence: aligning
the butterfly's two coefficients costs nothing because they are rows of
the same tile — only the *carry* movement inside an addition shifts.
"""

from __future__ import annotations

from repro.core.layout import DataLayout
from repro.errors import LayoutError
from repro.sram.isa import (
    BinaryPair,
    CarryStep,
    CheckCarry,
    CopyGated,
    SetFlags,
    ShiftDirection,
    ShiftRow,
    Unary,
    UnaryOp,
)
from repro.sram.program import Program


def emit_resolve(program: Program, layout: DataLayout) -> None:
    """Collapse the carry-save pair into a plain value in the Sum row.

    ``Sum += Carry << 1`` with full ripple; afterwards ``Sum`` holds the
    Montgomery product (< 2M) and ``Carry`` is free scratch.
    """
    s = layout.scratch
    program.begin_section("carry_resolve")
    program.emit(ShiftRow(s.carry, s.carry, ShiftDirection.LEFT))
    program.emit(BinaryPair(s.sum, s.sum, s.carry))
    for _ in range(layout.width - 1):
        program.emit(CarryStep(s.sum, s.sum))
    program.end_section()


def emit_cond_subtract(program: Program, layout: DataLayout, x_row: int) -> None:
    """Canonicalize ``row[x] in [0, 2M)`` to ``[0, M)``.

    Computes ``x - M`` into T1 via two's complement (the negated modulus
    is ``NOT M`` with the tile LSB forced — exact because M is odd) and
    keeps it wherever the subtraction did not borrow.
    """
    s = layout.scratch
    if x_row in (s.t0, s.t1):
        raise LayoutError("cond_subtract operand may not alias its temporaries")
    program.begin_section("cond_subtract")
    program.emit(Unary(UnaryOp.NOT, s.t0, s.mod, set_lsb=True))
    program.emit(BinaryPair(s.t1, x_row, s.t0))
    for _ in range(layout.width):
        program.emit(CarryStep(s.t1, s.t1))
    program.emit(CheckCarry())
    program.emit(CopyGated(x_row, s.t1))
    program.end_section()


def emit_mod_add(program: Program, layout: DataLayout, dst: int, a_row: int, b_row: int) -> None:
    """``row[dst] = (row[a] + row[b]) mod M`` for canonical operands.

    ``dst`` may alias ``a_row`` or ``b_row`` (reads happen before the
    writeback within each instruction) but not the temporaries.
    """
    s = layout.scratch
    if dst in (s.t0, s.t1):
        raise LayoutError("mod_add destination may not alias the temporaries")
    program.begin_section("mod_add")
    program.emit(BinaryPair(dst, a_row, b_row))
    # a + b < 2M < 2^w: the value settles within width-1 rounds and no
    # carry leaves the tile.
    for _ in range(layout.width - 1):
        program.emit(CarryStep(dst, dst))
    program.end_section()
    emit_cond_subtract(program, layout, dst)


def emit_mod_sub(program: Program, layout: DataLayout, dst: int, a_row: int, b_row: int) -> None:
    """``row[dst] = (row[a] - row[b]) mod M`` for canonical operands.

    Two's-complement subtraction; the carry-out distinguishes
    ``a >= b`` (no fix-up) from a borrow (add M back, gated per tile).
    """
    s = layout.scratch
    if dst in (s.t0, s.t1):
        raise LayoutError("mod_sub destination may not alias the temporaries")
    program.begin_section("mod_sub")
    program.emit(Unary(UnaryOp.NOT, s.t0, b_row))
    program.emit(BinaryPair(dst, a_row, s.t0, carry_in=True))
    for _ in range(layout.width):
        program.emit(CarryStep(dst, dst))
    program.emit(CheckCarry(invert=True))
    program.emit(BinaryPair(dst, dst, s.mod, gate_operand1=True))
    for _ in range(layout.width - 1):
        program.emit(CarryStep(dst, dst))
    program.end_section()


def emit_fetch(program: Program, layout: DataLayout, dst: int, src_row: int,
               tile_offset: int) -> int:
    """Make a (possibly spilled) coefficient readable on base-tile bitlines.

    Returns the row to read the operand from: the original row when the
    coefficient is resident, else ``dst`` after copying and sliding it
    ``tile_offset * width`` columns down with array-wide shifts (the
    cross-tile merge of §IV-B).
    """
    if tile_offset == 0:
        return src_row
    program.begin_section("spill_fetch")
    program.emit(Unary(UnaryOp.COPY, dst, src_row))
    for _ in range(tile_offset * layout.width):
        program.emit(ShiftRow(dst, dst, ShiftDirection.RIGHT, segmented=False))
    program.end_section()
    return dst


def emit_store(program: Program, layout: DataLayout, value_row: int, dst_row: int,
               tile_offset: int, shuttle_row: int) -> None:
    """Write a computed value back to a coefficient location.

    Resident layouts write the row directly.  Spill layouts must never
    write a coefficient row across its full width (other tiles of that
    row hold live data), so the value is slid to the owning tile column
    range (via ``shuttle_row`` when a shift is needed) and committed with
    a per-tile gated copy.
    """
    program.begin_section("store")
    if not layout.uses_spill:
        if value_row != dst_row:
            program.emit(Unary(UnaryOp.COPY, dst_row, value_row))
        program.end_section()
        return
    if tile_offset == 0:
        source = value_row
    else:
        program.emit(Unary(UnaryOp.COPY, shuttle_row, value_row))
        for _ in range(tile_offset * layout.width):
            program.emit(ShiftRow(shuttle_row, shuttle_row, ShiftDirection.LEFT,
                                  segmented=False))
        source = shuttle_row
    program.emit(SetFlags(layout.offset_tile_mask(tile_offset)))
    program.emit(CopyGated(dst_row, source))
    program.end_section()
