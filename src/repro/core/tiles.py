"""Tile capacity arithmetic (§I and §IV-B claims).

The paper sizes BP-NTT's flexibility with tile arithmetic on a 256x256
subarray: ``floor(256 / w)`` tiles of ``w`` columns, each row of a tile
holding one coefficient.  This module reproduces those claims and adds
the *effective* numbers once the 6 intermediate rows are reserved.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.errors import CapacityError, ParameterError
from repro.mont.bitparallel import safe_modulus_bound

#: Intermediate rows reserved per subarray (Fig 5a): Sum, Carry, two
#: compressor temporaries, the spill landing row, and the modulus row.
SCRATCH_ROW_COUNT = 6


def container_width(modulus: int, *, minimum: int = 0) -> int:
    """Smallest column count per coefficient that runs ``modulus`` safely.

    Observation 1 of Algorithm 2 requires ``M < 2^(w-1)`` (see
    :func:`repro.mont.bitparallel.safe_modulus_bound`), so a b-bit
    modulus needs ``b + 1`` columns.  ``minimum`` lets callers round up
    to a standard container (e.g. 16).
    """
    if modulus < 3:
        raise ParameterError(f"modulus must be >= 3, got {modulus}")
    width = modulus.bit_length() + 1
    width = max(width, minimum, 4)
    if modulus > safe_modulus_bound(width):  # pragma: no cover - by construction
        raise ParameterError(f"internal error sizing container for {modulus}")
    return width


@dataclass(frozen=True)
class CapacityReport:
    """Capacity of one subarray for a given coefficient width."""

    rows: int
    cols: int
    width: int
    num_tiles: int
    coeff_rows_per_tile: int
    max_resident_order: int      # largest polynomial kept in one tile
    max_order: int               # largest polynomial across all tiles
    paper_claimed_order: int     # the paper's rows*tiles arithmetic

    @property
    def parallel_polys(self) -> int:
        """How many max_resident_order polynomials run concurrently."""
        return self.num_tiles


def capacity_report(rows: int = 256, cols: int = 256, width: int = 16) -> CapacityReport:
    """Compute what fits in one subarray at a coefficient width.

    Reproduces the §I capacity claims: at 256 bits one tile holds a
    250-point polynomial; at 14 bits, 18 tiles x 250 rows = 4500 points
    (the paper quotes rows x tiles without reserving intermediate rows —
    both numbers are reported).
    """
    if width <= 0 or width > cols:
        raise ParameterError(f"width {width} out of range (0, {cols}]")
    num_tiles = cols // width
    if num_tiles == 0:  # pragma: no cover - guarded above
        raise CapacityError(f"no {width}-bit tile fits in {cols} columns")
    coeff_rows = rows - SCRATCH_ROW_COUNT
    if coeff_rows <= 0:
        raise CapacityError(f"{rows} rows leave no space after scratch reservation")
    return CapacityReport(
        rows=rows,
        cols=cols,
        width=width,
        num_tiles=num_tiles,
        coeff_rows_per_tile=coeff_rows,
        max_resident_order=coeff_rows,
        max_order=coeff_rows * num_tiles,
        paper_claimed_order=coeff_rows * num_tiles,
    )


def tiles_per_polynomial(order: int, rows: int = 256) -> int:
    """Tiles one polynomial occupies (spill tiles beyond the first)."""
    if order <= 0:
        raise ParameterError(f"polynomial order must be positive, got {order}")
    coeff_rows = rows - SCRATCH_ROW_COUNT
    return math.ceil(order / coeff_rows)


def batch_size(order: int, rows: int = 256, cols: int = 256, width: int = 16) -> int:
    """Polynomials processed in parallel by one subarray.

    Raises :class:`CapacityError` when even a single polynomial does not
    fit (the paper's answer there is ganging subarrays).
    """
    report = capacity_report(rows, cols, width)
    k = tiles_per_polynomial(order, rows)
    if k > report.num_tiles:
        raise CapacityError(
            f"a {order}-point polynomial needs {k} tiles of {width} bits; "
            f"the subarray has {report.num_tiles}"
        )
    return report.num_tiles // k
