"""Compile complete NTT / INTT instruction streams (Algorithm 1).

The scheduler walks the same loop structure as the gold model in
:mod:`repro.ntt.transform` — identical stage/block/butterfly order and
identical twiddle indexing — but emits SRAM microcode instead of doing
arithmetic.  Twiddles are Montgomery-pre-scaled (``zeta * R mod q``) so
the carry-save product of Algorithm 2 lands directly in the normal
domain (§IV-D).

Compiled programs are position-independent of the *data* (they only
encode row addresses and twiddle bits), so one program stored in the
CTRL/CMD subarray serves every batch — the paper's flexibility story.
"""

from __future__ import annotations

from repro.core.butterfly import (
    emit_coefficient_scale,
    emit_ct_butterfly,
    emit_gs_butterfly,
)
from repro.core.layout import DataLayout
from repro.errors import ParameterError
from repro.mont.bitparallel import safe_modulus_bound
from repro.ntt.params import NTTParams
from repro.ntt.twiddles import TwiddleTable
from repro.sram.program import Program


def _check_compatible(layout: DataLayout, params: NTTParams) -> None:
    if layout.order != params.n:
        raise ParameterError(
            f"layout is sized for order {layout.order}, parameters use {params.n}"
        )
    if params.q > safe_modulus_bound(layout.width):
        raise ParameterError(
            f"modulus {params.q} exceeds the safe bound for a "
            f"{layout.width}-bit container (Observation 1); widen the container"
        )


def compile_ntt_from_twiddles(layout: DataLayout, twiddles,
                              name: str = "ntt") -> Program:
    """Forward NTT schedule from an explicit (scaled) twiddle table.

    ``twiddles`` is indexed like Algorithm 1's zeta array (entry 0
    unused).  This entry point also serves the Fig 8 sweeps, which
    explore container widths that admit no real NTT-friendly modulus:
    the *schedule* (and hence the cycle/energy cost) only depends on the
    twiddle bit patterns, not on their number theory.
    """
    program = Program(name=name)
    n = layout.order
    k = 0
    length = n // 2
    while length > 0:
        start = 0
        while start < n:
            k += 1
            zeta = twiddles[k]
            for j in range(start, start + length):
                emit_ct_butterfly(program, layout, j, j + length, zeta)
            start += 2 * length
        length //= 2
    return program


def compile_ntt(layout: DataLayout, params: NTTParams,
                table: TwiddleTable = None) -> Program:
    """Forward negacyclic NTT program: standard order in, bit-reversed out."""
    _check_compatible(layout, params)
    table = table or TwiddleTable(params)
    twiddles = table.forward_scaled(layout.width)
    return compile_ntt_from_twiddles(
        layout, twiddles, name=f"ntt-n{params.n}-q{params.q}-w{layout.width}"
    )


def compile_intt(layout: DataLayout, params: NTTParams,
                 table: TwiddleTable = None) -> Program:
    """Inverse negacyclic NTT program: bit-reversed in, standard order out.

    Ends with the ``n^-1`` scaling pass (one constant multiplication per
    coefficient), as the gold model does.
    """
    _check_compatible(layout, params)
    table = table or TwiddleTable(params)
    twiddles = table.inverse_scaled(layout.width)
    program = Program(name=f"intt-n{params.n}-q{params.q}-w{layout.width}")
    n = params.n
    q = params.q
    k = n
    length = 1
    while length < n:
        start = 0
        while start < n:
            k -= 1
            zeta = twiddles[k]
            for j in range(start, start + length):
                emit_gs_butterfly(program, layout, j, j + length, zeta)
            start += 2 * length
        length *= 2
    n_inv_scaled = (params.n_inv * pow(2, layout.width, q)) % q
    for index in range(n):
        emit_coefficient_scale(program, layout, index, n_inv_scaled)
    return program


def compile_pointwise_mul(layout: DataLayout, params: NTTParams,
                          other_hat) -> Program:
    """Pointwise product against a *known* NTT-domain polynomial.

    This is the server-side pattern of R-LWE encryption: one operand
    (e.g. the public key) is fixed, so its NTT-domain coefficients can be
    compiled into twiddle-style constants while the SRAM-resident batch
    supplies the other operand.  Coefficient ``i`` of every slot is
    multiplied by ``other_hat[i]``.
    """
    _check_compatible(layout, params)
    if len(other_hat) != params.n:
        raise ParameterError(
            f"expected {params.n} NTT-domain coefficients, got {len(other_hat)}"
        )
    r = pow(2, layout.width, params.q)
    program = Program(name=f"pointwise-n{params.n}-q{params.q}")
    for index, value in enumerate(other_hat):
        scaled = (value % params.q) * r % params.q
        emit_coefficient_scale(program, layout, index, scaled)
    return program


def butterfly_count(n: int) -> int:
    """Number of butterflies in one n-point NTT: (n/2) log2 n."""
    if n < 2 or n & (n - 1):
        raise ParameterError(f"order must be a power of two >= 2, got {n}")
    return (n // 2) * (n.bit_length() - 1)
