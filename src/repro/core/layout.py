"""Tile-based data layout (Fig 5a) and the implicit-shift addressing.

The layout places each polynomial's coefficients in distinct *rows* of
one tile (coefficient ``c`` -> row ``c``), so a butterfly aligns its two
operands simply by activating their rows — no word shifting ("costless
shift", §IV-B/E).  The top :data:`~repro.core.tiles.SCRATCH_ROW_COUNT`
rows of the subarray are the shared intermediate variables.

When the polynomial order exceeds one tile's coefficient capacity, the
polynomial occupies ``k`` adjacent tiles (coefficient ``c`` lives in
tile offset ``c // capacity`` at row ``c % capacity``) and the batch
shrinks to ``num_tiles // k``.  Accessing a spilled coefficient costs
``offset * width`` array-wide 1-bit shifts to slide it onto the base
tile's bitlines — the "additional shift overhead" the paper attributes
to large orders in Fig 8(b).  Because every polynomial group has the
same internal geometry, all groups perform these shifts in lockstep.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.tiles import SCRATCH_ROW_COUNT
from repro.errors import CapacityError, LayoutError, ParameterError
from repro.utils.bitops import mask


@dataclass(frozen=True)
class ScratchRows:
    """Row addresses of the six intermediate variables (Fig 5a)."""

    sum: int      # Algorithm 2 Sum register
    carry: int    # Algorithm 2 Carry register
    t0: int       # compressor temporary / negated-operand scratch
    t1: int       # compressor temporary / subtraction scratch
    landing: int  # spill landing pad (T2)
    mod: int      # modulus constant, replicated per tile


@dataclass(frozen=True)
class CoeffLocation:
    """Physical position of one coefficient within a polynomial group."""

    row: int
    tile_offset: int  # 0 = base tile; >0 = spill tile (needs shifting)

    @property
    def is_spilled(self) -> bool:
        return self.tile_offset > 0


class DataLayout:
    """Maps (polynomial slot, coefficient index) -> (tile, row).

    One layout describes how a batch of equal-order polynomials shares a
    subarray.  All slots are geometrically congruent, which is what lets
    a single instruction stream drive the whole batch.
    """

    def __init__(self, rows: int, cols: int, width: int, order: int):
        if width <= 2:
            raise ParameterError(f"coefficient width must exceed 2, got {width}")
        if width > cols:
            raise ParameterError(f"width {width} exceeds the column count {cols}")
        if order <= 0:
            raise ParameterError(f"polynomial order must be positive, got {order}")
        self.rows = rows
        self.cols = cols
        self.width = width
        self.order = order
        # floor(cols / width) tiles; leftover columns stay unused, exactly
        # like the paper's floor(256/n) tile arithmetic.
        self.num_tiles = cols // width
        self.used_cols = self.num_tiles * width
        self.coeff_rows = rows - SCRATCH_ROW_COUNT
        if self.coeff_rows <= 0:
            raise CapacityError(f"{rows} rows cannot host scratch plus coefficients")
        self.tiles_per_poly = -(-order // self.coeff_rows)  # ceil
        if self.tiles_per_poly > self.num_tiles:
            raise CapacityError(
                f"{order}-point polynomial needs {self.tiles_per_poly} tiles; "
                f"subarray has {self.num_tiles} ({width}-bit each)"
            )
        self.batch = self.num_tiles // self.tiles_per_poly
        base = rows - SCRATCH_ROW_COUNT
        self.scratch = ScratchRows(
            sum=base, carry=base + 1, t0=base + 2, t1=base + 3,
            landing=base + 4, mod=base + 5,
        )

    @property
    def uses_spill(self) -> bool:
        """True when coefficients overflow into adjacent tiles."""
        return self.tiles_per_poly > 1

    def locate(self, coeff_index: int) -> CoeffLocation:
        """Position of a coefficient within its polynomial group."""
        if not 0 <= coeff_index < self.order:
            raise LayoutError(
                f"coefficient {coeff_index} out of range [0, {self.order})"
            )
        return CoeffLocation(
            row=coeff_index % self.coeff_rows,
            tile_offset=coeff_index // self.coeff_rows,
        )

    def tile_of(self, slot: int, coeff_index: int) -> int:
        """Absolute tile index holding a coefficient of batch slot ``slot``."""
        if not 0 <= slot < self.batch:
            raise LayoutError(f"slot {slot} out of range [0, {self.batch})")
        return slot * self.tiles_per_poly + self.locate(coeff_index).tile_offset

    def base_tile_mask(self) -> int:
        """Per-tile flag mask selecting every group's base tile."""
        flags = 0
        for slot in range(self.batch):
            flags |= 1 << (slot * self.tiles_per_poly)
        return flags

    def offset_tile_mask(self, tile_offset: int) -> int:
        """Per-tile flag mask selecting tile ``tile_offset`` of each group."""
        if not 0 <= tile_offset < self.tiles_per_poly:
            raise LayoutError(
                f"tile offset {tile_offset} out of range [0, {self.tiles_per_poly})"
            )
        flags = 0
        for slot in range(self.batch):
            flags |= 1 << (slot * self.tiles_per_poly + tile_offset)
        return flags

    def word_mask(self) -> int:
        """All-ones value of one coefficient word."""
        return mask(self.width)

    def __repr__(self) -> str:
        return (
            f"DataLayout(order={self.order}, width={self.width}, "
            f"batch={self.batch}, tiles_per_poly={self.tiles_per_poly})"
        )
