"""SLO-aware scheduling: queue limits, deadlines, weighted fairness.

The ``slo`` scheduler makes overload behavior a first-class, measured
result instead of an unbounded queue:

- **Admission control.**  The waiting queue is bounded at
  ``queue_limit`` requests globally, and each tenant additionally owns
  a share of it proportional to its configured weight (an unlisted
  tenant weighs ``1.0``; with no weights configured the global bound is
  the only one).  A request arriving past either bound is dropped with
  reason ``"queue_full"``.  A request whose deadline cannot be met even
  by an idle lane starting immediately (``arrival + service >
  deadline``) is dropped with reason ``"deadline_unmet"``.  Both
  decisions depend only on the request and the queue state, so the
  drop set is deterministic.
- **Deadline-driven dispatch.**  Batches coalesce per (tenant, batch
  key) — single-tenant batches keep the fairness accounting exact —
  and close at ``min(oldest arrival + max_wait, min over deadlines of
  (deadline - service))``: a batch is forced out early enough that its
  tightest request can still finish on time if a lane is free.
- **Deficit round-robin.**  Dispatch (and therefore lane-placement)
  order follows DRR over tenants: each round a tenant earns ``quantum
  x weight`` credits and spends one per request dispatched, so a heavy
  tenant cannot starve a light one of lanes when several batches are
  ready at one instant, and the round-robin cursor advances on every
  dispatch — solo or tied — so no tenant is served twice in a row
  while another waits.

Lanes are the global shared pool of :class:`~repro.sched.base.
GlobalLanePool`: idle capacity from any parameter set serves any
tenant's burst.
"""

from __future__ import annotations

import itertools
from typing import Dict, List, Mapping, Optional, Tuple

from repro.errors import SchedulerError
from repro.obs.tracer import NULL_TRACER, TraceEvent
from repro.sched.base import GlobalLanePool, LaneReport, Placement
from repro.serve.batcher import BatchPolicy, CoalescingBatcher, PolyBatch
from repro.serve.request import Request

#: Drop reasons the admission path can return.
DROP_QUEUE_FULL = "queue_full"
DROP_DEADLINE_UNMET = "deadline_unmet"


class SLOScheduler:
    """Bounded queues, per-request deadlines, DRR tenant fairness."""

    name = "slo"

    def __init__(self, pool, policy: BatchPolicy, *, backend: str = "model",
                 queue_limit: int = 64,
                 tenant_weights: Optional[Mapping[str, float]] = None,
                 quantum: float = 4.0, **options):
        if options:
            raise SchedulerError(
                f"slo scheduler got unknown options {sorted(options)}; "
                "known: queue_limit, tenant_weights, quantum"
            )
        if queue_limit < 1:
            raise SchedulerError(f"queue_limit must be >= 1, got {queue_limit}")
        if quantum <= 0:
            raise SchedulerError(f"quantum must be > 0, got {quantum}")
        self.tenant_weights = dict(tenant_weights or {})
        for tenant, weight in self.tenant_weights.items():
            if weight <= 0:
                raise SchedulerError(
                    f"tenant {tenant!r} weight must be > 0, got {weight}"
                )
        self.pool = pool
        self.policy = policy
        self.backend = backend
        self.queue_limit = queue_limit
        self.quantum = quantum
        self._lanes = GlobalLanePool(pool.lane_count)
        self._batcher = CoalescingBatcher(
            policy,
            lambda key: pool.capacity(key, backend=backend),
            id_factory=itertools.count().__next__,
            group_of=lambda request: (request.tenant, request.batch_key),
        )
        self._tenant_waiting: Dict[str, int] = {}
        self._deficit: Dict[str, float] = {}
        self._last_tenant: Optional[str] = None
        self.tracer = NULL_TRACER

    def bind_tracer(self, tracer) -> None:
        """Route this replay's lifecycle events through ``tracer``."""
        self.tracer = tracer
        self._batcher.tracer = tracer
        self._lanes.tracer = tracer

    # -- weighted shares ---------------------------------------------------

    def weight(self, tenant: str) -> float:
        return self.tenant_weights.get(tenant, 1.0)

    def share(self, tenant: str) -> int:
        """The tenant's bounded slice of the waiting queue.

        With no weights configured every tenant may use the whole
        (globally bounded) queue; with weights, shares are fixed
        fractions of ``queue_limit`` (computed from the config alone,
        so admission is independent of which tenants happen to be
        active).
        """
        if not self.tenant_weights:
            return self.queue_limit
        total = sum(self.tenant_weights.values())
        if tenant not in self.tenant_weights:
            total += 1.0
        return max(1, round(self.queue_limit * self.weight(tenant) / total))

    def _service_s(self, key: tuple) -> float:
        return self.pool.profile(key, backend=self.backend).latency_s

    # -- admission and queueing -------------------------------------------

    def admit(self, request: Request, now_s: float) -> Optional[str]:
        if request.deadline_s is not None:
            if now_s + self._service_s(request.batch_key) > request.deadline_s:
                return DROP_DEADLINE_UNMET
        if len(self._batcher) >= self.queue_limit:
            return DROP_QUEUE_FULL
        if self._tenant_waiting.get(request.tenant, 0) >= self.share(request.tenant):
            return DROP_QUEUE_FULL
        return None

    def enqueue(self, request: Request, now_s: float) -> List[PolyBatch]:
        self._lanes.ensure(request.params_name)
        self._tenant_waiting[request.tenant] = \
            self._tenant_waiting.get(request.tenant, 0) + 1
        full = self._batcher.add(request)
        if self.tracer.enabled:
            batch = full if full is not None else self._batcher.open_batch(
                (request.tenant, request.batch_key)
            )
            self.tracer.emit(TraceEvent(
                phase="enqueue", t_s=now_s, request_id=request.request_id,
                batch_id=None if batch is None else batch.batch_id,
                kind=request.kind, tenant=request.tenant,
                attrs={"tenant_waiting":
                       self._tenant_waiting[request.tenant]},
            ))
        if full is not None:
            self._tenant_waiting[request.tenant] -= full.size
            return [full]
        return []

    def _pop(self, group: Tuple[str, tuple]) -> PolyBatch:
        batch = self._batcher.pop(group)
        self._tenant_waiting[group[0]] -= batch.size
        return batch

    def waiting(self) -> int:
        return len(self._batcher)

    # -- dispatch ----------------------------------------------------------

    def _dispatch_deadline_s(self, batch: PolyBatch) -> float:
        """Latest instant the batch may wait and still meet every SLO."""
        deadline = batch.oldest_arrival_s + self.policy.max_wait_s
        service = self._service_s(batch.key)
        for request in batch.requests:
            if request.deadline_s is not None:
                deadline = min(deadline, request.deadline_s - service)
        return deadline

    def next_event_s(self) -> float:
        deadlines = [
            self._dispatch_deadline_s(batch)
            for _, batch in self._batcher.open_items()
        ]
        return min(deadlines, default=float("inf"))

    def poll(self, now_s: float) -> List[PolyBatch]:
        expired = [
            group for group, batch in self._batcher.open_items()
            if self._dispatch_deadline_s(batch) <= now_s
        ]
        return self._drr_order([self._pop(group) for group in expired])

    def flush(self, now_s: float) -> List[PolyBatch]:
        groups = [group for group, _ in self._batcher.open_items()]
        return self._drr_order([self._pop(group) for group in groups])

    def _drr_order(self, batches: List[PolyBatch]) -> List[PolyBatch]:
        """Deficit-round-robin dispatch order over the batches' tenants.

        Runs for every dispatch — including a solo batch — so the
        deficit counters and the round-robin cursor always reflect what
        was actually served.
        """
        if not batches:
            return batches
        by_tenant: Dict[str, List[PolyBatch]] = {}
        for batch in batches:
            by_tenant.setdefault(batch.requests[0].tenant, []).append(batch)
        for queue in by_tenant.values():
            queue.sort(key=lambda b: (b.oldest_arrival_s, b.batch_id))
        tenants = sorted(by_tenant)
        if self._last_tenant is not None:
            # Resume the round after the tenant served last time.
            tenants = ([t for t in tenants if t > self._last_tenant]
                       + [t for t in tenants if t <= self._last_tenant])
        order: List[PolyBatch] = []
        while any(by_tenant.values()):
            for tenant in tenants:
                queue = by_tenant[tenant]
                if not queue:
                    continue
                self._deficit[tenant] = (self._deficit.get(tenant, 0.0)
                                         + self.quantum * self.weight(tenant))
                dispatched = False
                while queue and queue[0].size <= self._deficit[tenant]:
                    batch = queue.pop(0)
                    self._deficit[tenant] -= batch.size
                    order.append(batch)
                    dispatched = True
                if not queue:
                    # Classic DRR: an emptied queue forfeits its credit.
                    self._deficit[tenant] = 0.0
                if dispatched:
                    # The resume cursor advances on actual dispatch only:
                    # a tenant whose large batch merely accrued deficit
                    # this round was not served, and the cursor must not
                    # drift past it.
                    self._last_tenant = tenant
        return order

    # -- placement ---------------------------------------------------------

    def place(self, batch: PolyBatch, now_s: float) -> Placement:
        return self._lanes.placement(
            batch.key[0], now_s, self._service_s(batch.key),
            batch_id=batch.batch_id,
        )

    def lane_report(self) -> LaneReport:
        return self._lanes.report()
