"""The extracted PR 1 policy: admit everything, fixed window, RR lanes.

``fifo`` is the serving simulator's original behavior lifted behind the
:class:`~repro.sched.base.Scheduler` protocol, kept as the regression
baseline: every request is admitted, batches close on the policy's
fixed ``max_wait_s`` window (or when full), each parameter set owns its
own ``pool.lane_count`` lanes, and batches round-robin across them.
Replaying a trace through ``fifo`` reproduces the pre-scheduler
simulator's numbers exactly — asserted in ``tests/sched``.
"""

from __future__ import annotations

import itertools
from typing import Dict, List, Optional, Tuple

from repro.errors import SchedulerError
from repro.obs.tracer import NULL_TRACER, TraceEvent
from repro.sched.base import LaneReport, Placement
from repro.serve.batcher import BatchPolicy, CoalescingBatcher, PolyBatch
from repro.serve.request import Request


class FifoScheduler:
    """Admit-all, fixed-window coalescing, per-parameter round-robin."""

    name = "fifo"

    def __init__(self, pool, policy: BatchPolicy, *, backend: str = "model",
                 **options):
        if options:
            raise SchedulerError(
                f"fifo scheduler takes no options, got {sorted(options)}"
            )
        self.pool = pool
        self.policy = policy
        self.backend = backend
        self._batcher = CoalescingBatcher(
            policy,
            lambda key: pool.capacity(key, backend=backend),
            id_factory=itertools.count().__next__,
        )
        self._free_at: Dict[Tuple[str, int], float] = {}
        self._busy_s: Dict[Tuple[str, int], float] = {}
        # Per-replay round-robin state (the pool's own counter would
        # leak phase between replays and break report determinism).
        self._rr: Dict[str, int] = {}
        # Per-tenant queue pressure, maintained only under a live
        # tracer (the untraced hot path never touches it).
        self._tenant_waiting: Dict[str, int] = {}
        self.tracer = NULL_TRACER

    def bind_tracer(self, tracer) -> None:
        """Route this replay's lifecycle events through ``tracer``."""
        self.tracer = tracer
        self._batcher.tracer = tracer

    # -- admission and queueing -------------------------------------------

    def admit(self, request: Request, now_s: float) -> Optional[str]:
        return None  # fifo never drops

    def enqueue(self, request: Request, now_s: float) -> List[PolyBatch]:
        full = self._batcher.add(request)
        if self.tracer.enabled:
            waiting = self._tenant_waiting.get(request.tenant, 0) + 1
            self._tenant_waiting[request.tenant] = waiting
            batch = full if full is not None \
                else self._batcher.open_batch(request.batch_key)
            self.tracer.emit(TraceEvent(
                phase="enqueue", t_s=now_s, request_id=request.request_id,
                batch_id=None if batch is None else batch.batch_id,
                kind=request.kind, tenant=request.tenant,
                attrs={"tenant_waiting": waiting},
            ))
            if full is not None:
                self._note_dispatched(full)
        return [full] if full is not None else []

    def _note_dispatched(self, batch: PolyBatch) -> None:
        for member in batch.requests:
            self._tenant_waiting[member.tenant] = \
                self._tenant_waiting.get(member.tenant, 1) - 1

    def waiting(self) -> int:
        return len(self._batcher)

    # -- dispatch ----------------------------------------------------------

    def next_event_s(self) -> float:
        return self._batcher.next_deadline_s()

    def poll(self, now_s: float) -> List[PolyBatch]:
        batches = self._batcher.take_expired(now_s)
        if self.tracer.enabled:
            for batch in batches:
                self._note_dispatched(batch)
        return batches

    def flush(self, now_s: float) -> List[PolyBatch]:
        batches = self._batcher.drain()
        if self.tracer.enabled:
            for batch in batches:
                self._note_dispatched(batch)
        return batches

    # -- placement ---------------------------------------------------------

    def place(self, batch: PolyBatch, now_s: float) -> Placement:
        params_name = batch.key[0]
        lane = self._rr.get(params_name, 0)
        self._rr[params_name] = (lane + 1) % self.pool.lane_count
        lane_key = (params_name, lane)
        start = max(now_s, self._free_at.get(lane_key, 0.0))
        latency = self.pool.profile(batch.key, backend=self.backend).latency_s
        self._free_at[lane_key] = start + latency
        self._busy_s[lane_key] = self._busy_s.get(lane_key, 0.0) + latency
        if self.tracer.enabled:
            attrs = {"params": params_name}
            self.tracer.emit(TraceEvent(
                phase="lane_start", t_s=start, lane=lane,
                batch_id=batch.batch_id, attrs=attrs,
            ))
            self.tracer.emit(TraceEvent(
                phase="lane_finish", t_s=start + latency, lane=lane,
                batch_id=batch.batch_id, attrs=attrs,
            ))
        return Placement(lane=lane, pool_lane=lane, start_s=start)

    def lane_report(self) -> LaneReport:
        params_used = {name for name, _ in self._free_at}
        return LaneReport(
            total_lanes=self.pool.lane_count * max(1, len(params_used)),
            busy_s=sum(self._busy_s.values()),
        )
