"""String-keyed registry of scheduler factories.

The same plugin seam as :mod:`repro.backends.registry`, built on the
shared :class:`repro.registry.FactoryRegistry`: the serving simulator
resolves its ``scheduler=`` knob here, the CLI derives its
``--scheduler`` choices from :func:`available_schedulers`, and third
parties extend the system by registering a factory under a new name —
no layer above this module hardcodes the set of policies.

A *factory* is any callable with the uniform construction signature::

    factory(pool: EnginePool, policy: BatchPolicy, *,
            backend: str = "model", **options) -> Scheduler

``options`` are policy-specific knobs (e.g. ``queue_limit`` for the
``slo`` scheduler); a factory must raise
:class:`~repro.errors.SchedulerError` on options it does not know.
Factories may be registered lazily as ``"module.path:attribute"``
strings, resolved on first :func:`get_scheduler` — which is how the
built-ins avoid importing the serve layer until a replay needs them.
"""

from __future__ import annotations

from typing import Callable, Tuple, Union

from repro.errors import SchedulerError
from repro.registry import FactoryRegistry

_REGISTRY = FactoryRegistry("scheduler", SchedulerError)


def register_scheduler(name: str, factory: Union[str, Callable], *,
                       replace: bool = False) -> None:
    """Register a scheduler factory under ``name``.

    ``factory`` is either a callable with the uniform construction
    signature or a lazy ``"module.path:attribute"`` spec.  Registering
    an existing name raises :class:`~repro.errors.SchedulerError`
    unless ``replace=True``.
    """
    _REGISTRY.register(name, factory, replace=replace)


def unregister_scheduler(name: str) -> None:
    """Remove a scheduler (no-op when absent); used by tests and plugins."""
    _REGISTRY.unregister(name)


def get_scheduler(name: str) -> Callable:
    """The factory registered under ``name`` (resolving lazy specs)."""
    return _REGISTRY.get(name)


def available_schedulers() -> Tuple[str, ...]:
    """Registered scheduler names, sorted (the CLI's ``--scheduler`` choices)."""
    return _REGISTRY.available()


def create_scheduler(name: str, pool, policy, **kwargs):
    """Construct a scheduler: ``get_scheduler(name)(pool, policy, **kwargs)``."""
    return get_scheduler(name)(pool, policy, **kwargs)


# The built-ins register lazily so importing the registry (e.g. from the
# CLI parser or the simulator) costs nothing until a replay resolves one.
register_scheduler("fifo", "repro.sched.fifo:FifoScheduler")
register_scheduler("slo", "repro.sched.slo:SLOScheduler")
register_scheduler("adaptive", "repro.sched.adaptive:AdaptiveScheduler")

# The cluster namespace derives a sharded variant of every base policy:
# ``cluster:<inner>`` wraps N per-chip ``<inner>`` instances behind the
# router front door (see repro.cluster.scheduler).
_REGISTRY.register_namespace("cluster", "repro.cluster.scheduler:cluster_factory")
