"""repro.sched — the SLO-aware global scheduler behind the serving loop.

PR 1's simulator served every request it was handed, on fixed
per-parameter round-robin lanes, with a fixed batching window.  This
package pulls all three decisions — **admission**, **placement**,
**dispatch timing** — behind one :class:`~repro.sched.base.Scheduler`
protocol so overload behavior, multi-tenant contention, and the
latency/energy trade become policy, not plumbing:

- :mod:`repro.sched.base` — the protocol (:meth:`admit` / :meth:`place`
  / :meth:`poll` and friends) plus :class:`GlobalLanePool`, which turns
  lanes into a shared resource any parameter set can borrow.
- :mod:`repro.sched.fifo` — PR 1's behavior, extracted: admit all,
  fixed window, per-parameter round-robin lanes.  The regression
  baseline.
- :mod:`repro.sched.slo` — queue limits, per-request deadlines and
  weighted per-tenant fairness (deficit round-robin), with explicit
  deterministic drops.
- :mod:`repro.sched.adaptive` — load-aware batching: the coalescing
  window widens under queue pressure and batches dispatch early when a
  compatible lane idles.
- :mod:`repro.sched.registry` — string-keyed factories
  (:func:`register_scheduler` / :func:`get_scheduler`), the seam the
  simulator and CLI resolve ``scheduler=`` through.

Pick one with ``ServingSimulator(..., scheduler="slo")`` or
``repro.cli serve --scheduler adaptive``; write your own by
implementing the protocol and registering a factory (see the README's
"write your own scheduler" walkthrough).
"""

from repro.sched.base import (
    GlobalLanePool,
    LaneReport,
    Placement,
    Scheduler,
)
from repro.sched.registry import (
    available_schedulers,
    create_scheduler,
    get_scheduler,
    register_scheduler,
    unregister_scheduler,
)

__all__ = [
    "GlobalLanePool",
    "LaneReport",
    "Placement",
    "Scheduler",
    "available_schedulers",
    "create_scheduler",
    "get_scheduler",
    "register_scheduler",
    "unregister_scheduler",
]
