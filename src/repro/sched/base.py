"""The scheduler protocol: admission, queueing, placement as one seam.

A *scheduler* owns every policy decision the serving simulator makes
about a trace — whether to accept a request (*admit*), when to close a
batch (*enqueue*/*poll*/*flush*), and which lane runs it (*place*).
The simulator keeps the clock, the event loop, and the bookkeeping of
responses; the scheduler keeps the queues and the lane occupancy.  The
contract is small and purely deterministic: same trace, same config,
byte-identical decisions.

The protocol decomposes a replay into seven calls:

- :meth:`Scheduler.admit` — at arrival time, accept (``None``) or drop
  the request with a reason string (``"queue_full"``,
  ``"deadline_unmet"``, ...).  Drops are explicit and final; the
  simulator records them in the report's drop set.
- :meth:`Scheduler.enqueue` — queue an admitted request; returns any
  batches that became ready *right now* (a batch filled, or the policy
  chose to dispatch early).
- :meth:`Scheduler.next_event_s` — the next instant the scheduler
  needs control (a batch window expiring, a lane coming free), or
  ``inf`` when it is idle.  Never in the past: the simulator advances
  its clock to this value.
- :meth:`Scheduler.poll` — the batches to dispatch at that instant.
- :meth:`Scheduler.flush` — end of trace: everything still queued.
- :meth:`Scheduler.place` — bind one batch to a lane, returning the
  :class:`Placement` (which lane, and when service starts given the
  lane's occupancy).  Called exactly once per dispatched batch, in
  dispatch order — placement order is the fairness lever.
- :meth:`Scheduler.lane_report` — total lanes and busy time, for the
  report's utilization number.

Two lane models ship with the built-ins.  The ``fifo`` scheduler keeps
PR 1's semantics: every parameter set owns ``pool.lane_count`` private
lanes.  The global schedulers (``slo``, ``adaptive``) instead treat
lanes as one shared resource via :class:`GlobalLanePool`: the same
physical subarray gangs, but any of them can be re-targeted to any
parameter set (engine construction is cheap and compiled programs are
cached in the pool), so idle Kyber capacity absorbs Dilithium or HE
bursts.  The pool grows by ``lanes_per_params`` for each distinct
parameter set a trace touches — hardware identical to the per-parameter
model, assignment flexible.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Protocol, Set, Tuple, runtime_checkable

from repro.errors import SchedulerError
from repro.obs.tracer import NULL_TRACER, TraceEvent
from repro.serve.batcher import PolyBatch
from repro.serve.request import Request


@dataclass(frozen=True)
class Placement:
    """Where and when one dispatched batch runs.

    Attributes:
        lane: the lane identity recorded in the report (a global lane
            index for shared-lane schedulers; the per-parameter lane
            index for fifo).
        pool_lane: index into the pool's cached backend instances for
            the batch's parameter set (always in ``[0, pool size)``) —
            what :meth:`repro.serve.pool.EnginePool.serve` executes on.
        start_s: when service starts (dispatch time, or later if the
            lane was still busy).
    """

    lane: int
    pool_lane: int
    start_s: float


@dataclass(frozen=True)
class LaneReport:
    """Lane accounting a replay ends with (feeds report utilization)."""

    total_lanes: int
    busy_s: float


@runtime_checkable
class Scheduler(Protocol):
    """Structural interface of a serving scheduler (see module docs)."""

    name: str

    def admit(self, request: Request, now_s: float) -> Optional[str]:
        """Drop reason, or ``None`` to accept."""
        ...  # pragma: no cover - protocol

    def enqueue(self, request: Request, now_s: float) -> List[PolyBatch]:
        """Queue an admitted request; returns batches ready right now."""
        ...  # pragma: no cover - protocol

    def waiting(self) -> int:
        """Requests currently queued (the report's queue-depth sample)."""
        ...  # pragma: no cover - protocol

    def next_event_s(self) -> float:
        """Next instant the scheduler needs control (inf when idle)."""
        ...  # pragma: no cover - protocol

    def poll(self, now_s: float) -> List[PolyBatch]:
        """Batches to dispatch at ``now_s``, in dispatch order."""
        ...  # pragma: no cover - protocol

    def flush(self, now_s: float) -> List[PolyBatch]:
        """End of trace: every still-open batch, in dispatch order."""
        ...  # pragma: no cover - protocol

    def place(self, batch: PolyBatch, now_s: float) -> Placement:
        """Bind a batch to a lane and commit the lane's busy window."""
        ...  # pragma: no cover - protocol

    def lane_report(self) -> LaneReport:
        """Total lanes and busy seconds accumulated over the replay."""
        ...  # pragma: no cover - protocol

    # Schedulers may additionally implement ``bind_tracer(tracer)`` —
    # the simulator calls it (when present) before each replay so the
    # scheduler, its batcher and its lane pool emit lifecycle events
    # (enqueue / batch_open / lane_start / lane_finish) through the
    # replay's :class:`repro.obs.Tracer`.  It is deliberately not part
    # of the structural protocol: a third-party scheduler without it is
    # still valid, it just contributes no events.


class GlobalLanePool:
    """Physical lanes as one globally shared, deterministic resource.

    One lane is one subarray gang.  The pool starts empty and grows by
    ``lanes_per_params`` the first time each parameter set appears —
    the same hardware the per-parameter model would dedicate, pooled.
    Placement prefers an idle lane that last served the batch's
    parameter set (program caches stay warm), then the lowest-numbered
    idle lane, then the lane that frees soonest; all ties break on the
    lane index, so placement is a pure function of the dispatch
    sequence.
    """

    def __init__(self, lanes_per_params: int):
        if lanes_per_params < 1:
            raise SchedulerError(
                f"lanes_per_params must be >= 1, got {lanes_per_params}"
            )
        self.lanes_per_params = lanes_per_params
        self.free_at: Dict[int, float] = {}
        self.last_params: Dict[int, Optional[str]] = {}
        self.busy_s = 0.0
        self._known: Set[str] = set()
        # Bound by the owning scheduler's bind_tracer; lane_start /
        # lane_finish events are emitted at placement time (the finish
        # instant is already known on the simulated clock).
        self.tracer = NULL_TRACER

    def __len__(self) -> int:
        return len(self.free_at)

    def ensure(self, params_name: str) -> None:
        """Grow the pool when a new parameter set first appears."""
        if params_name in self._known:
            return
        base = len(self.free_at)
        for index in range(base, base + self.lanes_per_params):
            self.free_at[index] = 0.0
            self.last_params[index] = None
        self._known.add(params_name)

    def idle_lane(self, now_s: float) -> Optional[int]:
        """Lowest-numbered lane free at ``now_s`` (None when all busy)."""
        for index in sorted(self.free_at):
            if self.free_at[index] <= now_s:
                return index
        return None

    def idle_count(self, now_s: float) -> int:
        """How many lanes are free at ``now_s``."""
        return sum(1 for t in self.free_at.values() if t <= now_s)

    def earliest_free_s(self) -> float:
        """When the next lane frees up (inf for an empty pool)."""
        return min(self.free_at.values(), default=float("inf"))

    def placement(self, params_name: str, now_s: float, latency_s: float,
                  *, batch_id: Optional[int] = None) -> Placement:
        """:meth:`place` wrapped as the scheduler-protocol result.

        ``pool_lane`` folds the global index onto the pool's cached
        backend instances (interchangeable within a parameter set) —
        the one mapping both global schedulers must agree on.
        ``batch_id`` only labels the emitted lane events.
        """
        lane, start = self.place(params_name, now_s, latency_s,
                                 batch_id=batch_id)
        return Placement(
            lane=lane,
            pool_lane=lane % self.lanes_per_params,
            start_s=start,
        )

    def place(self, params_name: str, now_s: float, latency_s: float,
              *, batch_id: Optional[int] = None) -> Tuple[int, float]:
        """Pick a lane, commit its busy window; returns (lane, start)."""
        self.ensure(params_name)
        idle = [g for g in sorted(self.free_at) if self.free_at[g] <= now_s]
        if idle:
            affine = [g for g in idle if self.last_params[g] == params_name]
            lane = affine[0] if affine else idle[0]
            start = now_s
        else:
            lane = min(self.free_at, key=lambda g: (self.free_at[g], g))
            start = self.free_at[lane]
        self.free_at[lane] = start + latency_s
        self.last_params[lane] = params_name
        self.busy_s += latency_s
        if self.tracer.enabled:
            attrs = {"params": params_name}
            self.tracer.emit(TraceEvent(
                phase="lane_start", t_s=start, lane=lane,
                batch_id=batch_id, attrs=attrs,
            ))
            self.tracer.emit(TraceEvent(
                phase="lane_finish", t_s=start + latency_s, lane=lane,
                batch_id=batch_id, attrs=attrs,
            ))
        return lane, start

    def report(self) -> LaneReport:
        return LaneReport(total_lanes=max(1, len(self.free_at)),
                          busy_s=self.busy_s)
