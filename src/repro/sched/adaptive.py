"""Load-aware batching: the coalescing window follows queue pressure.

The fixed-window trade is visible in ``bench_serve_latency``: short
windows buy tail latency at 3-4x the energy per request (batches
dispatch nearly empty), long windows buy occupancy at the cost of p99.
The ``adaptive`` scheduler refuses the trade by moving the window with
load:

- **Pressure-scaled window.**  The effective max-wait interpolates
  between ``min_wait_s`` and ``max_wait_s`` with the number of queued
  requests: an idle system dispatches quickly, a backlogged one holds
  batches open until they fill — which is exactly when company is
  plentiful, so the wider window costs little extra latency and wins
  occupancy (fewer invocations, less lane time, shorter queues, lower
  p99 *and* lower energy under burst).
- **Idle-lane early dispatch.**  The pressure window only governs
  batches that have no lane to run on — waiting is free when every
  lane is busy.  The moment a lane idles, an open batch claims it if
  it is at least ``idle_fill`` full (nearly-full: padding cost is
  marginal) or has already coalesced for ``min_wait_s`` (a straggler:
  more waiting buys little company but pays full latency).  Fresh,
  nearly-empty batches keep waiting, which bounds the energy cost.

Lanes are the global shared pool (:class:`~repro.sched.base.
GlobalLanePool`), so "a lane is idle" means *any* subarray gang in the
system, not just the batch's own parameter set — idle Kyber capacity
absorbs a Dilithium burst.

Defaults anchor on the policy's fixed window: ``min_wait_s =
policy.max_wait_s`` (the operator's declared latency tolerance is the
*base* window) and ``max_wait_s = 4x`` that (the pressure-widened
cap), with ``idle_fill = 1.0`` — on the paper's small per-invocation
capacities (3-9 requests) a fractional fill floor rounds up to "full"
for most keys anyway, so fill-based early dispatch is opt-in.
``benchmarks/bench_sched_policies.py`` shows the result on the bursty
mixed-tenant trace: energy per request identical to the best fixed
window, p99 cut by roughly a third.
"""

from __future__ import annotations

import itertools
from typing import List, Optional

from repro.errors import SchedulerError
from repro.obs.tracer import NULL_TRACER, TraceEvent
from repro.sched.base import GlobalLanePool, LaneReport, Placement
from repro.serve.batcher import BatchPolicy, CoalescingBatcher, PolyBatch
from repro.serve.request import Request


class AdaptiveScheduler:
    """Pressure-scaled windows with idle-lane early dispatch."""

    name = "adaptive"

    def __init__(self, pool, policy: BatchPolicy, *, backend: str = "model",
                 min_wait_s: Optional[float] = None,
                 max_wait_s: Optional[float] = None,
                 pressure: int = 16, idle_fill: float = 1.0, **options):
        if options:
            raise SchedulerError(
                f"adaptive scheduler got unknown options {sorted(options)}; "
                "known: min_wait_s, max_wait_s, pressure, idle_fill"
            )
        base = policy.max_wait_s
        if base == float("inf") and (min_wait_s is None or max_wait_s is None):
            raise SchedulerError(
                "adaptive scheduler needs finite windows; give min_wait_s "
                "and max_wait_s explicitly when policy.max_wait_s is inf"
            )
        self.min_wait_s = base if min_wait_s is None else min_wait_s
        self.max_wait_s = base * 4 if max_wait_s is None else max_wait_s
        if not 0 <= self.min_wait_s <= self.max_wait_s:
            raise SchedulerError(
                f"need 0 <= min_wait_s <= max_wait_s, got "
                f"{self.min_wait_s} .. {self.max_wait_s}"
            )
        if pressure < 1:
            raise SchedulerError(f"pressure must be >= 1, got {pressure}")
        if not 0 < idle_fill <= 1:
            raise SchedulerError(f"idle_fill must be in (0, 1], got {idle_fill}")
        self.pool = pool
        self.policy = policy
        self.backend = backend
        self.pressure = pressure
        self.idle_fill = idle_fill
        self._lanes = GlobalLanePool(pool.lane_count)
        self._batcher = CoalescingBatcher(
            policy,
            lambda key: pool.capacity(key, backend=backend),
            id_factory=itertools.count().__next__,
        )
        self._now = 0.0
        # Per-tenant queue pressure, maintained only under a live
        # tracer (the untraced hot path never touches it).
        self._tenant_waiting: Dict[str, int] = {}
        self.tracer = NULL_TRACER

    def bind_tracer(self, tracer) -> None:
        """Route this replay's lifecycle events through ``tracer``."""
        self.tracer = tracer
        self._batcher.tracer = tracer
        self._lanes.tracer = tracer

    # -- the load-scaled window -------------------------------------------

    def window_s(self) -> float:
        """Effective max-wait at the current queue depth."""
        fraction = min(1.0, len(self._batcher) / self.pressure)
        return self.min_wait_s + (self.max_wait_s - self.min_wait_s) * fraction

    def _deadline_s(self, batch: PolyBatch) -> float:
        return batch.oldest_arrival_s + self.window_s()

    def _eligible_at_s(self, batch: PolyBatch) -> float:
        """Earliest instant the batch may claim an idle lane."""
        if batch.size >= self.idle_fill * batch.capacity:
            return 0.0  # nearly full: any idle lane, immediately
        return batch.oldest_arrival_s + self.min_wait_s

    def _eligible(self, batch: PolyBatch, now_s: float) -> bool:
        """Worth an idle lane right now: nearly full, or a straggler.

        Must share ``_eligible_at_s``'s exact arithmetic: the event loop
        wakes at that instant and re-checks with this predicate, so any
        float divergence between the two would stall the replay.
        """
        return now_s >= self._eligible_at_s(batch)

    # -- admission and queueing -------------------------------------------

    def admit(self, request: Request, now_s: float) -> Optional[str]:
        return None  # adaptive shapes batches, never drops

    def enqueue(self, request: Request, now_s: float) -> List[PolyBatch]:
        self._now = now_s
        self._lanes.ensure(request.params_name)
        full = self._batcher.add(request)
        if self.tracer.enabled:
            waiting = self._tenant_waiting.get(request.tenant, 0) + 1
            self._tenant_waiting[request.tenant] = waiting
            batch = full if full is not None \
                else self._batcher.open_batch(request.batch_key)
            self.tracer.emit(TraceEvent(
                phase="enqueue", t_s=now_s, request_id=request.request_id,
                batch_id=None if batch is None else batch.batch_id,
                kind=request.kind, tenant=request.tenant,
                attrs={"window_s": self.window_s(),
                       "tenant_waiting": waiting},
            ))
            if full is not None:
                self._note_dispatched(full)
        if full is not None:
            return [full]
        # Early dispatch happens in poll(), never here: arrivals at one
        # instant must all coalesce before an idle lane may claim the
        # batch (the event loop gives arrivals priority on time ties,
        # and next_event_s fires a wake-up at this same instant).
        return []

    def waiting(self) -> int:
        return len(self._batcher)

    # -- dispatch ----------------------------------------------------------

    def next_event_s(self) -> float:
        open_items = self._batcher.open_items()
        if not open_items:
            return float("inf")
        earliest_free = self._lanes.earliest_free_s()
        candidates = []
        for _, batch in open_items:
            # The pressure window is the fallback; the early-dispatch
            # moment is when the batch becomes lane-worthy AND a lane
            # is free (earliest_free is in the past when one is idle
            # already — the max() then lands on the eligibility time,
            # i.e. right after all same-instant arrivals coalesce).
            candidates.append(min(
                self._deadline_s(batch),
                max(self._eligible_at_s(batch), earliest_free),
            ))
        # Never schedule into the past: a window that shrank below the
        # current instant dispatches at the current instant.
        return max(min(candidates), self._now)

    def poll(self, now_s: float) -> List[PolyBatch]:
        self._now = now_s
        out: List[PolyBatch] = []
        changed = True
        while changed:
            changed = False
            # Window expiries first (the window re-shrinks as the queue
            # drains, so re-check until stable)...
            for group, batch in self._oldest_first():
                if self._deadline_s(batch) <= now_s:
                    out.append(self._batcher.pop(group))
                    changed = True
            # ...then early dispatch: one eligible batch (oldest first)
            # per lane still idle once the batches above claim theirs.
            spare = self._lanes.idle_count(now_s) - len(out)
            eligible = [
                group for group, batch in self._oldest_first()
                if self._eligible(batch, now_s)
            ]
            for group in eligible[:max(0, spare)]:
                out.append(self._batcher.pop(group))
                changed = True
        if self.tracer.enabled:
            for batch in out:
                self._note_dispatched(batch)
        return out

    def flush(self, now_s: float) -> List[PolyBatch]:
        self._now = now_s
        out = [self._batcher.pop(group) for group, _ in self._oldest_first()]
        if self.tracer.enabled:
            for batch in out:
                self._note_dispatched(batch)
        return out

    def _note_dispatched(self, batch: PolyBatch) -> None:
        for member in batch.requests:
            self._tenant_waiting[member.tenant] = \
                self._tenant_waiting.get(member.tenant, 1) - 1

    def _oldest_first(self) -> List[tuple]:
        return sorted(self._batcher.open_items(),
                      key=lambda item: (item[1].oldest_arrival_s,
                                        item[1].batch_id))

    # -- placement ---------------------------------------------------------

    def place(self, batch: PolyBatch, now_s: float) -> Placement:
        latency = self.pool.profile(batch.key, backend=self.backend).latency_s
        return self._lanes.placement(batch.key[0], now_s, latency,
                                     batch_id=batch.batch_id)

    def lane_report(self) -> LaneReport:
        return self._lanes.report()
