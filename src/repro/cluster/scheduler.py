"""Two-level scheduling: the router picks a chip, the chip picks a lane.

``cluster:<inner>`` (registered as a namespace in
:mod:`repro.sched.registry`) wraps N independent instances of the
``<inner>`` policy — one per simulated chip — behind the
:class:`~repro.sched.base.Scheduler` protocol, so a plain
:class:`~repro.serve.simulator.ServingSimulator` drives a whole cluster
without learning anything new.  Each inner instance keeps private lane
occupancy, so every SCHED001-009 conformance rule holds per chip.

Namespacing keeps the merged event stream unambiguous and collapses to
the identity on a cluster of one (the byte-parity guarantee):

- batch ids:  ``global = local * chips + chip``
- lane ids:   ``global = local * chips + chip``

so the owning chip of any batch or lane is ``id % chips``.

Chip lifecycle is driven by :class:`ChipEvent`\\ s on the replay clock:
``drain`` removes a chip from routing but lets queued work finish,
``fail`` flushes its open batches and re-enqueues the member requests
onto surviving chips (request conservation — SCHED009 — holds across
failures), ``restore`` returns it to the routing pool.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, List, Optional, Sequence, Tuple, Union

from repro.errors import SchedulerError
from repro.obs.tracer import NULL_TRACER, TraceEvent
from repro.sched.base import LaneReport, Placement
from repro.serve.batcher import BatchPolicy, PolyBatch
from repro.serve.request import Request

__all__ = ["ChipEvent", "ClusterScheduler", "cluster_factory"]

_CHIP_ACTIONS = ("drain", "fail", "restore")


@dataclass(frozen=True)
class ChipEvent:
    """A chip lifecycle change at ``t_s`` on the replay clock."""

    t_s: float
    chip: int
    action: str

    def __post_init__(self) -> None:
        if self.action not in _CHIP_ACTIONS:
            raise SchedulerError(
                f"unknown chip action {self.action!r}; "
                f"expected one of {_CHIP_ACTIONS}"
            )
        if self.t_s < 0.0:
            raise SchedulerError(f"chip event time must be >= 0, got {self.t_s}")


class _ChipTracer:
    """Per-chip tracer shim that namespaces ids and labels the chip.

    Inner schedulers emit ``enqueue``/``batch_open`` *before* the batch
    surfaces (original local batch id) and ``lane_start``/``lane_finish``
    at ``place()`` time (batch id already namespaced, lane still local) —
    so batch ids rewrite only on the former pair and lanes only on the
    latter.
    """

    __slots__ = ("base", "chip", "chips", "enabled")

    def __init__(self, base, chip: int, chips: int):
        self.base = base
        self.chip = chip
        self.chips = chips
        self.enabled = base.enabled

    def emit(self, event: TraceEvent) -> None:
        attrs = {**event.attrs, "chip": self.chip}
        if event.phase in ("enqueue", "batch_open"):
            batch_id = event.batch_id
            if batch_id is not None:
                batch_id = batch_id * self.chips + self.chip
            event = replace(event, batch_id=batch_id, attrs=attrs)
        elif event.phase in ("lane_start", "lane_finish"):
            event = replace(
                event, lane=event.lane * self.chips + self.chip, attrs=attrs)
        else:
            event = replace(event, attrs=attrs)
        self.base.emit(event)


class ClusterScheduler:
    """N per-chip schedulers behind one router front door."""

    def __init__(self, pool, policy: BatchPolicy, *, inner: str = "fifo",
                 backend: str = "model", chips: int = 1,
                 router: str = "affinity",
                 router_options: Optional[dict] = None,
                 chip_events: Sequence[Union[ChipEvent, tuple]] = (),
                 **inner_options):
        from repro.cluster.router import create_router
        from repro.sched.registry import create_scheduler

        if not isinstance(chips, int) or chips < 1:
            raise SchedulerError(f"cluster needs chips >= 1, got {chips!r}")
        if inner.startswith("cluster:"):
            raise SchedulerError("cluster schedulers do not nest")
        self.pool = pool
        self.policy = policy
        self.backend = backend
        self.chips = chips
        self.inner = inner
        # A cluster of one reports the inner policy's own name so its
        # serialized reports stay byte-identical to single-chip goldens.
        self.name = inner if chips == 1 else f"cluster:{inner}"
        self._chips = [
            create_scheduler(inner, pool, policy, backend=backend,
                             **dict(inner_options))
            for _ in range(chips)
        ]
        self.router = create_router(router, chips,
                                    **dict(router_options or {}))
        events = [event if isinstance(event, ChipEvent) else ChipEvent(*event)
                  for event in chip_events]
        for event in events:
            if not 0 <= event.chip < chips:
                raise SchedulerError(
                    f"chip event targets chip {event.chip}, "
                    f"cluster has {chips}"
                )
        self._pending = sorted(events, key=lambda e: (e.t_s, e.chip))
        self._live = set(range(chips))
        self._live_order: Tuple[int, ...] = tuple(range(chips))
        self._route: Dict[int, int] = {}
        self.tracer = NULL_TRACER

    # -- tracing -----------------------------------------------------------

    def bind_tracer(self, tracer) -> None:
        """Give each chip a shim that namespaces its events."""
        self.tracer = tracer
        for chip, scheduler in enumerate(self._chips):
            bind = getattr(scheduler, "bind_tracer", None)
            if bind is not None:
                bind(_ChipTracer(tracer, chip, self.chips)
                     if tracer.enabled else tracer)

    # -- admission and queueing -------------------------------------------

    def admit(self, request: Request, now_s: float) -> Optional[str]:
        if not self._live:
            return "no_live_chips"
        chip = self.router.chip_for(request, self._live_order)
        reason = self._chips[chip].admit(request, now_s)
        if reason is None:
            self._route[request.request_id] = chip
        return reason

    def enqueue(self, request: Request, now_s: float) -> List[PolyBatch]:
        chip = self._route.pop(request.request_id, None)
        if chip is None:
            chip = self.router.chip_for(request, self._live_order)
        return self._surface(self._chips[chip].enqueue(request, now_s), chip)

    def waiting(self) -> int:
        return sum(scheduler.waiting() for scheduler in self._chips)

    # -- dispatch ----------------------------------------------------------

    def next_event_s(self) -> float:
        t_s = min(scheduler.next_event_s() for scheduler in self._chips)
        if self._pending:
            t_s = min(t_s, self._pending[0].t_s)
        return t_s

    def poll(self, now_s: float) -> List[PolyBatch]:
        surfaced: List[PolyBatch] = []
        while self._pending and self._pending[0].t_s <= now_s:
            self._apply(self._pending.pop(0), now_s, surfaced)
        for chip, scheduler in enumerate(self._chips):
            if scheduler.next_event_s() <= now_s:
                surfaced.extend(self._surface(scheduler.poll(now_s), chip))
        return surfaced

    def flush(self, now_s: float) -> List[PolyBatch]:
        surfaced: List[PolyBatch] = []
        for chip, scheduler in enumerate(self._chips):
            surfaced.extend(self._surface(scheduler.flush(now_s), chip))
        return surfaced

    def _apply(self, event: ChipEvent, now_s: float,
               surfaced: List[PolyBatch]) -> None:
        if event.action == "restore":
            self._live.add(event.chip)
        else:
            self._live.discard(event.chip)
        self._live_order = tuple(sorted(self._live))
        if event.action == "fail":
            # A failed chip loses its open batches; the member requests
            # re-enqueue on surviving chips so conservation holds.
            for batch in self._chips[event.chip].flush(now_s):
                for member in batch.requests:
                    if not self._live:
                        raise SchedulerError(
                            f"chip {event.chip} failed with queued work "
                            f"and no live chips remain"
                        )
                    target = self.router.chip_for(member, self._live_order)
                    surfaced.extend(self._surface(
                        self._chips[target].enqueue(member, now_s), target))

    # -- placement ---------------------------------------------------------

    def _surface(self, batches: List[PolyBatch], chip: int) -> List[PolyBatch]:
        # PolyBatch is mutable by design; rewriting in place keeps the
        # id the simulator sees consistent with later place() calls.
        for batch in batches:
            batch.batch_id = batch.batch_id * self.chips + chip
        return batches

    def place(self, batch: PolyBatch, now_s: float) -> Placement:
        chip = batch.batch_id % self.chips
        placement = self._chips[chip].place(batch, now_s)
        return Placement(
            lane=placement.lane * self.chips + chip,
            pool_lane=placement.pool_lane,
            start_s=placement.start_s,
        )

    def lane_report(self) -> LaneReport:
        reports = [scheduler.lane_report() for scheduler in self._chips]
        return LaneReport(
            total_lanes=sum(report.total_lanes for report in reports),
            busy_s=sum(report.busy_s for report in reports),
        )

    # -- introspection -----------------------------------------------------

    @property
    def live_chips(self) -> Tuple[int, ...]:
        return self._live_order


def cluster_factory(inner: str):
    """The ``cluster`` namespace wrapper: a factory for ``cluster:<inner>``."""

    def factory(pool, policy: BatchPolicy, *, backend: str = "model",
                chips: int = 1, router: str = "affinity",
                router_options: Optional[dict] = None,
                chip_events: Sequence[Union[ChipEvent, tuple]] = (),
                **inner_options):
        return ClusterScheduler(
            pool, policy, inner=inner, backend=backend, chips=chips,
            router=router, router_options=router_options,
            chip_events=chip_events, **inner_options)

    return factory
