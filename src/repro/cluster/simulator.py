"""The cluster front door: one event clock multiplexed across N chips.

:class:`ClusterSimulator` consumes a whole
:class:`~repro.serve.config.ReplayConfig` and drives a plain
:class:`~repro.serve.simulator.ServingSimulator` with the
``cluster:<inner>`` scheduler — the simulator's single discrete-event
clock *is* the cluster clock, with per-chip wakeups interleaved through
:meth:`ClusterScheduler.next_event_s`.  After the replay it annotates
the report's metrics registry with per-chip gauges and the cross-shard
imbalance metric the scaling bench asserts on.

Imbalance is ``max(chip busy seconds) / mean(chip busy seconds)`` —
1.0 is a perfectly balanced cluster, 2.0 means the hottest shard does
double the average work.
"""

from __future__ import annotations

from typing import List, Sequence, Union

from repro.errors import ParameterError
from repro.serve.config import ReplayConfig
from repro.serve.metrics import ServeReport
from repro.serve.simulator import ServingSimulator

__all__ = ["ClusterSimulator", "annotate_cluster_metrics", "cluster_imbalance"]


def _per_chip_busy(report: ServeReport, chips: int) -> List[float]:
    busy = [0.0] * chips
    for batch in report.batches:
        busy[batch.lane % chips] += batch.finish_s - batch.start_s
    return busy


def cluster_imbalance(report: ServeReport, chips: int) -> float:
    """``max / mean`` of per-chip busy seconds (1.0 = perfectly balanced)."""
    busy = _per_chip_busy(report, chips)
    mean = sum(busy) / max(1, chips)
    if mean <= 0.0:
        return 1.0
    return max(busy) / mean


def annotate_cluster_metrics(report: ServeReport, chips: int) -> float:
    """Add per-chip gauges and the imbalance gauge to ``report.registry``.

    Lane ids are chip-namespaced (``chip = lane % chips``), so the
    per-chip breakdown is derivable from the batch records without any
    simulator plumbing.  Returns the imbalance value.
    """
    busy = _per_chip_busy(report, chips)
    served = [0] * chips
    dispatched = [0] * chips
    for batch in report.batches:
        chip = batch.lane % chips
        served[chip] += batch.size
        dispatched[chip] += 1
    registry = report.registry
    if registry is not None:
        for chip in range(chips):
            labels = {"chip": str(chip)}
            registry.gauge("cluster.chip_busy_s", labels).set(busy[chip])
            registry.gauge("cluster.chip_requests", labels).set(served[chip])
            registry.gauge("cluster.chip_batches", labels).set(dispatched[chip])
    mean = sum(busy) / max(1, chips)
    imbalance = 1.0 if mean <= 0.0 else max(busy) / mean
    if registry is not None:
        registry.gauge("cluster.chips").set(chips)
        registry.gauge("cluster.imbalance").set(imbalance)
    return imbalance


class ClusterSimulator:
    """N simulated chips behind one front door, driven by one config."""

    def __init__(self, config: ReplayConfig, *, admission_gate=None):
        if not isinstance(config, ReplayConfig):
            raise ParameterError(
                f"ClusterSimulator takes a ReplayConfig, got "
                f"{type(config).__name__}"
            )
        self.config = config
        self.chips = config.chips
        self.pool = config.build_pool()
        self._options = config.effective_scheduler_options()
        self._options["chips"] = config.chips
        self._options["router"] = config.router
        if config.router_options:
            self._options["router_options"] = dict(config.router_options)
        self.simulator = ServingSimulator(
            self.pool,
            config.batch_policy(),
            backend=config.backend,
            scheduler=f"cluster:{config.scheduler}",
            scheduler_options=self._options,
            admission_gate=admission_gate,
        )

    def replay(self, requests: Sequence, *,
               chip_events: Sequence[Union[tuple, object]] = (),
               tracer=None) -> ServeReport:
        """Replay ``requests``, optionally under chip drain/fail events.

        The simulator builds a fresh scheduler per replay from its
        options dict, so chip events inject cleanly per call.
        """
        options = dict(self._options)
        if chip_events:
            options["chip_events"] = tuple(chip_events)
        self.simulator.scheduler_options = options
        report = self.simulator.replay(requests, tracer=tracer)
        annotate_cluster_metrics(report, self.chips)
        return report
