"""Chip placement policies for the cluster front door.

A router answers one question: *which live chip should this request
land on?*  The contract mirrors the scheduler seam — a string-keyed
:class:`~repro.registry.FactoryRegistry`, uniform construction
``factory(chips, **options)``, and :class:`~repro.errors.SchedulerError`
on misuse — so ``repro.cli serve --router <name>`` derives its choices
the same way ``--scheduler`` does.

The default :class:`AffinityRouter` implements key-material affinity:
requests whose batch key carries a fixed second operand (relin-key
halves, operand-ciphertext components, plaintext constants — the
long-lived coalescible operands from the HE trail) pin to a chip via
rendezvous hashing, so one operand's program cache and coalescing
window live on one shard and survive unrelated membership changes.
Operand-less kernels (bare ``ntt``/``intt``) have a single degenerate
batch key per ring; hashing those would pile every such request onto
one chip, so they spread round-robin instead.  Hot tenants can opt
into ``replicate={tenant: k}``: their keys own the top-``k`` rendezvous
chips and rotate among them.
"""

from __future__ import annotations

import hashlib
import itertools
from typing import Dict, Iterator, Mapping, Tuple, Union

from repro.errors import SchedulerError
from repro.registry import FactoryRegistry
from repro.serve.request import Request

__all__ = ["AffinityRouter", "RoundRobinRouter", "available_routers",
           "create_router", "get_router", "register_router",
           "unregister_router"]


def _key_digest(batch_key: tuple) -> bytes:
    """A stable 16-byte digest of a batch key (params, op, operand)."""
    return hashlib.blake2b(repr(batch_key).encode(), digest_size=16).digest()


def _rendezvous_ranked(digest: bytes, live: Tuple[int, ...]) -> Tuple[int, ...]:
    """Live chips ranked by highest-random-weight for this key digest.

    The rendezvous property is what makes affinity drain-stable: when a
    chip leaves, only the keys it owned move (each to its next-ranked
    chip); every other pin is untouched.
    """
    def weight(chip: int) -> bytes:
        return hashlib.blake2b(digest + chip.to_bytes(4, "big"),
                               digest_size=8).digest()

    return tuple(sorted(live, key=weight, reverse=True))


class AffinityRouter:
    """Rendezvous-hashed key-material affinity with hot-tenant replication."""

    name = "affinity"

    def __init__(self, chips: int, *,
                 replicate: Union[int, Mapping[str, int], None] = None):
        if chips < 1:
            raise SchedulerError(f"router needs chips >= 1, got {chips}")
        self.chips = chips
        if replicate is None:
            replicate = {}
        elif isinstance(replicate, int):
            replicate = {"": replicate}
        self._replicas: Dict[str, int] = {}
        for tenant, count in dict(replicate).items():
            if not isinstance(count, int) or count < 1:
                raise SchedulerError(
                    f"replicate counts must be ints >= 1, got "
                    f"{tenant!r}: {count!r}"
                )
            self._replicas[tenant] = count
        self._digests: Dict[tuple, bytes] = {}
        self._ranked: Dict[Tuple[bytes, Tuple[int, ...]], Tuple[int, ...]] = {}
        self._cursors: Dict[tuple, Iterator[int]] = {}
        self._pins: Dict[tuple, int] = {}

    def _replica_count(self, tenant: str) -> int:
        count = self._replicas.get(tenant, self._replicas.get("", 1))
        return max(1, count)

    def chip_for(self, request: Request, live: Tuple[int, ...]) -> int:
        if not live:
            raise SchedulerError("no live chips to route onto")
        key = request.batch_key
        if key[2] is None:
            # Operand-less kernel: one degenerate key per ring — spread.
            cursor = self._cursors.get(key)
            if cursor is None:
                cursor = self._cursors[key] = itertools.count()
            chip = live[next(cursor) % len(live)]
            self._pins[key] = chip
            return chip
        digest = self._digests.get(key)
        if digest is None:
            digest = self._digests[key] = _key_digest(key)
        ranked = self._ranked.get((digest, live))
        if ranked is None:
            ranked = self._ranked[(digest, live)] = _rendezvous_ranked(
                digest, live)
        replicas = min(self._replica_count(request.tenant), len(ranked))
        if replicas == 1:
            chip = ranked[0]
        else:
            cursor = self._cursors.get(key)
            if cursor is None:
                cursor = self._cursors[key] = itertools.count()
            chip = ranked[next(cursor) % replicas]
        self._pins[key] = chip
        return chip

    def pins(self) -> Dict[tuple, int]:
        """Last placement per batch key (introspection for tests/demos)."""
        return dict(self._pins)


class RoundRobinRouter:
    """Affinity-blind baseline: cycle over the live chips."""

    name = "round-robin"

    def __init__(self, chips: int):
        if chips < 1:
            raise SchedulerError(f"router needs chips >= 1, got {chips}")
        self.chips = chips
        self._cursor = itertools.count()
        self._pins: Dict[tuple, int] = {}

    def chip_for(self, request: Request, live: Tuple[int, ...]) -> int:
        if not live:
            raise SchedulerError("no live chips to route onto")
        chip = live[next(self._cursor) % len(live)]
        self._pins[request.batch_key] = chip
        return chip

    def pins(self) -> Dict[tuple, int]:
        """Last placement per batch key (introspection for tests/demos)."""
        return dict(self._pins)


_REGISTRY = FactoryRegistry("router", SchedulerError)


def register_router(name, factory, *, replace: bool = False) -> None:
    """Register a router factory (``factory(chips, **options) -> router``)."""
    _REGISTRY.register(name, factory, replace=replace)


def unregister_router(name: str) -> None:
    """Remove a router (no-op when absent); used by tests and plugins."""
    _REGISTRY.unregister(name)


def get_router(name: str):
    """The factory registered under ``name`` (resolving lazy specs)."""
    return _REGISTRY.get(name)


def available_routers() -> Tuple[str, ...]:
    """Registered router names, sorted (the CLI's ``--router`` choices)."""
    return _REGISTRY.available()


def create_router(name: str, chips: int, **options):
    """Construct a router: ``get_router(name)(chips, **options)``."""
    try:
        return get_router(name)(chips, **options)
    except TypeError as error:
        raise SchedulerError(
            f"router {name!r} rejected its options: {error}"
        ) from error


register_router("affinity", AffinityRouter)
register_router("round-robin", RoundRobinRouter)
