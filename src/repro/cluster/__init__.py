"""Multi-chip sharded serving behind one front door.

The cluster layer is a second scheduling level over the existing
:class:`~repro.sched.base.Scheduler` protocol: a router places each
admitted request on a chip (key-material affinity via rendezvous
hashing, optional replication for hot tenants), and that chip's own
scheduler instance — any registered policy — picks the lane.  Every
SCHED conformance rule keeps holding per chip; the CLUSTER rules in
:mod:`repro.check.cluster` add the routing-level contract on top.

Entry points:

- ``scheduler="cluster:<inner>"`` on a plain
  :class:`~repro.serve.simulator.ServingSimulator` (the namespace is
  registered in :mod:`repro.sched.registry`).
- :class:`ClusterSimulator`, which consumes a whole
  :class:`~repro.serve.config.ReplayConfig` and annotates reports with
  per-chip gauges and the cross-shard imbalance metric.
"""

from repro.cluster.router import (
    AffinityRouter,
    RoundRobinRouter,
    available_routers,
    create_router,
    get_router,
    register_router,
    unregister_router,
)
from repro.cluster.scheduler import ChipEvent, ClusterScheduler, cluster_factory
from repro.cluster.simulator import (
    ClusterSimulator,
    annotate_cluster_metrics,
    cluster_imbalance,
)

__all__ = [
    "AffinityRouter",
    "ChipEvent",
    "ClusterScheduler",
    "ClusterSimulator",
    "RoundRobinRouter",
    "annotate_cluster_metrics",
    "available_routers",
    "cluster_factory",
    "cluster_imbalance",
    "create_router",
    "get_router",
    "register_router",
    "unregister_router",
]
