"""Cluster-scale traffic mixes, registered via the scenario registry.

``cluster-mixed`` is the routing stress mix: a wide Kyber key pool
(eight distinct long-lived operands for rendezvous hashing to spread),
operand-less Dilithium NTTs (round-robin spread traffic), an HE
analytics tenant on the 1024-point ring, and a ``hot`` tenant whose
two keys concentrate load — the case ``replicate={"hot": k}`` on the
affinity router exists for.  Key counts are deliberately modest: every
distinct ``polymul`` operand compiles its own pointwise program the
first time a chip prices it (~1.6 s on the Kyber ring, ~12 s on the HE
ring), so the mix keeps one-time compile cost near the existing
``mixed-slo``/``he-mul`` smokes.
"""

from __future__ import annotations

from repro.serve.workload import MixComponent, Scenario

__all__ = ["cluster_mixed"]


def cluster_mixed() -> Scenario:
    """The multi-chip mixed-tenant scenario (see module docstring)."""
    return Scenario("cluster-mixed", (
        MixComponent("kyber", "polymul", "kyber-v1", 0.40, operand_pool=8,
                     tenant="handshake", slo_ms=4.0),
        MixComponent("dilithium", "ntt", "dilithium", 0.25,
                     tenant="signing", slo_ms=8.0),
        MixComponent("he", "polymul", "he-16bit", 0.15, operand_pool=1,
                     requests_per_call=2, tenant="analytics", slo_ms=25.0),
        MixComponent("kyber-hot", "polymul", "kyber-v1", 0.20, operand_pool=2,
                     tenant="hot", slo_ms=4.0),
    ))
