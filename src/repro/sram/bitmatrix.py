"""Raw bit storage for an SRAM subarray.

Each row is a Python integer treated as a ``cols``-wide bit vector; bit
``c`` of the integer is the cell at column ``c``.  Arbitrary-precision
ints make 256-bit-row bitwise operations a single interpreter operation,
which keeps full 256-point NTT simulations tractable while remaining
exact.
"""

from __future__ import annotations

from typing import Iterable, List

from repro.errors import LayoutError, ParameterError
from repro.utils.bitops import mask


class BitMatrix:
    """A ``rows x cols`` grid of bits with row-granular access."""

    def __init__(self, rows: int, cols: int):
        if rows <= 0 or cols <= 0:
            raise ParameterError(f"matrix dimensions must be positive, got {rows}x{cols}")
        self.rows = rows
        self.cols = cols
        self._mask = mask(cols)
        self._data: List[int] = [0] * rows

    def _check_row(self, row: int) -> None:
        if not 0 <= row < self.rows:
            raise LayoutError(f"row {row} out of range [0, {self.rows})")

    def read_row(self, row: int) -> int:
        """Return the row's bits as an integer (bit c == column c)."""
        self._check_row(row)
        return self._data[row]

    def write_row(self, row: int, value: int) -> None:
        """Overwrite a row; ``value`` must fit in ``cols`` bits."""
        self._check_row(row)
        if value < 0 or value > self._mask:
            raise LayoutError(f"value does not fit in {self.cols} columns")
        self._data[row] = value

    def get_bit(self, row: int, col: int) -> int:
        """Read a single cell."""
        self._check_row(row)
        if not 0 <= col < self.cols:
            raise LayoutError(f"column {col} out of range [0, {self.cols})")
        return (self._data[row] >> col) & 1

    def set_bit(self, row: int, col: int, bit: int) -> None:
        """Write a single cell."""
        self._check_row(row)
        if not 0 <= col < self.cols:
            raise LayoutError(f"column {col} out of range [0, {self.cols})")
        if bit not in (0, 1):
            raise ParameterError(f"bit must be 0 or 1, got {bit}")
        if bit:
            self._data[row] |= 1 << col
        else:
            self._data[row] &= ~(1 << col) & self._mask

    def multi_row_and(self, rows: Iterable[int]) -> int:
        """Bitline AND of several simultaneously activated rows.

        This is the physical primitive of Fig 3(a): with multiple
        wordlines raised, a bitline only stays above V_ref when *every*
        activated cell on it holds '1'.
        """
        result = self._mask
        count = 0
        for row in rows:
            self._check_row(row)
            result &= self._data[row]
            count += 1
        if count == 0:
            raise ParameterError("multi-row activation needs at least one row")
        return result

    def multi_row_nor(self, rows: Iterable[int]) -> int:
        """Bitline NOR: '1' exactly where every activated cell holds '0'."""
        acc = 0
        count = 0
        for row in rows:
            self._check_row(row)
            acc |= self._data[row]
            count += 1
        if count == 0:
            raise ParameterError("multi-row activation needs at least one row")
        return (~acc) & self._mask

    def clear(self) -> None:
        """Zero every cell."""
        self._data = [0] * self.rows

    def snapshot(self) -> List[int]:
        """Copy of all rows (for tests and debugging)."""
        return list(self._data)

    def __repr__(self) -> str:
        return f"BitMatrix({self.rows}x{self.cols})"
