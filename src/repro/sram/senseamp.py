"""Sense-amplifier model (Fig 5b).

The paper modifies the conventional SA to support, per column:

- the bitline logic results AND / NOR of the activated rows (Fig 3a),
  from which OR and XOR are composed with an inverter and a NOR gate
  (Fig 3b),
- a MUX + latch implementing a 1-bit bidirectional shift,
- (modeled here, implied by the Fig 4d ``Check`` instruction and the
  multi-tile vector operation) a small per-tile predicate latch used to
  gate one operand — this is how ``m = M or 0`` is selected per tile
  even though wordlines are shared across all tiles.

This module is purely combinational; the stateful latch lives in
:class:`~repro.sram.subarray.SRAMSubarray`.
"""

from __future__ import annotations

from repro.errors import ParameterError
from repro.utils.bitops import mask


class SenseAmpLogic:
    """Combinational bitline logic over ``cols`` columns."""

    def __init__(self, cols: int):
        if cols <= 0:
            raise ParameterError(f"column count must be positive, got {cols}")
        self.cols = cols
        self._mask = mask(cols)

    def logic_and(self, a: int, b: int) -> int:
        """Bitline AND (all activated cells '1')."""
        return a & b & self._mask

    def logic_nor(self, a: int, b: int) -> int:
        """Bitline NOR (all activated cells '0')."""
        return (~(a | b)) & self._mask

    def logic_or(self, a: int, b: int) -> int:
        """OR = inverted NOR (the extra inverter in Fig 5b)."""
        return (a | b) & self._mask

    def logic_xor(self, a: int, b: int) -> int:
        """XOR = NOR(AND, NOR) per Fig 3(b)."""
        return self.logic_nor(self.logic_and(a, b), self.logic_nor(a, b))

    def shift_segmented(self, value: int, left: bool, segment: int) -> "ShiftResult":
        """Shift by one bit with zero fill at segment boundaries.

        ``segment`` is the tile width configured in the CTRL subarray;
        bits never cross a tile boundary — the bit that would leave each
        segment is captured and returned so the executor can maintain
        per-tile carry-out flags (used for >=-comparisons).

        ``segment == 0`` means an unsegmented, array-wide shift (used to
        merge coefficients that spill into an adjacent tile).
        """
        if segment < 0 or (segment and self.cols % segment):
            raise ParameterError(
                f"segment width {segment} must divide column count {self.cols}"
            )
        if segment == 0:
            if left:
                shifted = (value << 1) & self._mask
                out_bits = value >> (self.cols - 1)
            else:
                shifted = value >> 1
                out_bits = value & 1
            return ShiftResult(shifted, out_bits)
        seg_mask = mask(segment)
        shifted = 0
        out_bits = 0
        for tile in range(self.cols // segment):
            chunk = (value >> (tile * segment)) & seg_mask
            if left:
                out = chunk >> (segment - 1)
                chunk = (chunk << 1) & seg_mask
            else:
                out = chunk & 1
                chunk >>= 1
            shifted |= chunk << (tile * segment)
            out_bits |= out << tile
        return ShiftResult(shifted, out_bits)


class ShiftResult:
    """A shifted row plus the per-segment bits that fell off the edge."""

    __slots__ = ("value", "out_bits")

    def __init__(self, value: int, out_bits: int):
        self.value = value
        self.out_bits = out_bits

    def __repr__(self) -> str:
        return f"ShiftResult(value={self.value:#x}, out_bits={self.out_bits:#x})"
