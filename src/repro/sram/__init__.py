"""In-SRAM computing substrate.

A functional, cycle-level model of the paper's execution fabric: a 6T
SRAM subarray whose wordline decoders can activate two rows at once so
the sense amplifiers compute bitwise logic on the bitlines (Fig 3), a
modified sense amplifier with a MUX + latch giving 1-bit bidirectional
shifts (Fig 5b), and the small memory-mapped ISA of Fig 4(d) driven from
a CTRL/CMD subarray.

Layering:

- :mod:`repro.sram.bitmatrix` — raw bit storage (one int per row).
- :mod:`repro.sram.senseamp`  — sense-amplifier combinational model.
- :mod:`repro.sram.isa`       — instruction encoding (Fig 4d).
- :mod:`repro.sram.program`   — instruction sequences with metadata.
- :mod:`repro.sram.subarray`  — geometry + storage + peripheral state.
- :mod:`repro.sram.executor`  — runs programs, counts cycles and energy.
- :mod:`repro.sram.energy`    — 45 nm technology constants, area model.
- :mod:`repro.sram.cache`     — bank / LLC-slice integration (Fig 4a-c).
"""

from repro.sram.bitmatrix import BitMatrix
from repro.sram.energy import TechnologyModel, TECH_45NM
from repro.sram.executor import ExecutionStats, Executor
from repro.sram.isa import (
    BinaryOp,
    BinaryPair,
    CarryStep,
    Check,
    CheckCarry,
    CopyGated,
    Instruction,
    LogicBinary,
    SetFlags,
    SetLatch,
    ShiftDirection,
    ShiftRow,
    Unary,
    UnaryOp,
)
from repro.sram.program import Program
from repro.sram.subarray import SRAMSubarray

__all__ = [
    "BitMatrix",
    "TechnologyModel",
    "TECH_45NM",
    "ExecutionStats",
    "Executor",
    "BinaryOp",
    "BinaryPair",
    "CarryStep",
    "Check",
    "CheckCarry",
    "CopyGated",
    "Instruction",
    "LogicBinary",
    "SetFlags",
    "SetLatch",
    "ShiftDirection",
    "ShiftRow",
    "Unary",
    "UnaryOp",
    "Program",
    "SRAMSubarray",
]
