"""The BP-NTT instruction set (Fig 4d).

The paper encodes four instruction classes streamed from the CTRL/CMD
subarray: *Check*, *Unary*, *Shift* and *Binary*.  This module keeps
that taxonomy but splits *Binary* into the concrete micro-operations the
modified sense amplifier supports, because cycle and energy accounting
differ:

- :class:`LogicBinary`   — plain two-row AND/OR/XOR/NOR to a row.
- :class:`BinaryPair`    — two-row activation writing XOR to a row while
  parking AND in the SA shift latch (both polarities are sensed in the
  same activation per Fig 3b; the latch is the Fig 5b addition).  This
  is the half-adder step of the paper's carry-save arithmetic.
- :class:`CarryStep`     — one ripple round: the latch is shifted left
  one bit and combined with a row (XOR back to the row, AND into the
  latch).  Repeating it ``w-1`` times completes a w-bit addition.
- :class:`CopyGated`     — a row write masked by the per-tile predicate
  flags (the Fig 4d *Check* consumer): per-tile select.

Every instruction is a frozen dataclass; programs are plain sequences.

Operand gating (``gate_operand1``) models the ``m = M or 0`` selection
of Algorithm 2 line 11: wordlines are shared across tiles, so per-tile
conditionality must happen at the sense amplifiers; the predicate latch
masks operand 1 to zero in tiles whose flag is clear.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Union


class BinaryOp(enum.Enum):
    """Two-operand bitline logic operations."""

    AND = "and"
    OR = "or"
    XOR = "xor"
    NOR = "nor"


class UnaryOp(enum.Enum):
    """Single-operand operations."""

    COPY = "copy"
    NOT = "not"
    ZERO = "zero"


class ShiftDirection(enum.Enum):
    """1-bit shift directions of the Fig 5b MUX."""

    LEFT = "left"
    RIGHT = "right"


@dataclass(frozen=True)
class Check:
    """Latch per-tile predicate flags from one column of ``row``.

    ``bit_index`` selects which bit *within each tile* feeds the flag
    (0 = tile LSB, used for Algorithm 2's LSB test; ``w-1`` = tile MSB,
    used for sign tests).
    """

    row: int
    bit_index: int = 0
    invert: bool = False


@dataclass(frozen=True)
class CheckCarry:
    """Load the predicate flags from the per-tile carry-out register.

    The carry-out register accumulates the bits that fell off each tile
    during :class:`CarryStep` latch shifts — i.e. the adder's carry-out,
    which is the >= comparison result needed for conditional subtraction.
    """

    invert: bool = False


@dataclass(frozen=True)
class SetFlags:
    """Load the per-tile predicate latch with an immediate mask.

    The CTRL subarray drives the predicate latches directly; this is how
    the compiler restricts gated writebacks to the tiles that own the
    data (spill-mode coefficient stores).
    """

    mask: int


@dataclass(frozen=True)
class Unary:
    """Copy / invert / clear a row.

    ``set_lsb=True`` additionally forces each tile's LSB column to 1 in
    the written value.  Combined with NOT this produces the two's
    complement of an odd value in a single instruction (``~M | 1 ==
    ~M + 1`` exactly when M is odd) — the negated-modulus constant used
    by conditional subtraction.
    """

    op: UnaryOp
    dst: int
    src: int = 0
    set_lsb: bool = False


@dataclass(frozen=True)
class ShiftRow:
    """Read ``src``, shift the latched value one bit, write ``dst``.

    ``segmented=True`` (default) stops bits at tile boundaries with zero
    fill — safe for Algorithm 2 thanks to its two observations (the bit
    that would cross is always 0).  ``segmented=False`` is the array-wide
    shift used to merge polynomial coefficients spilling across tiles.
    """

    dst: int
    src: int
    direction: ShiftDirection
    segmented: bool = True


@dataclass(frozen=True)
class LogicBinary:
    """Plain two-row logic op written back to ``dst``."""

    op: BinaryOp
    dst: int
    src0: int
    src1: int
    gate_operand1: bool = False


@dataclass(frozen=True)
class BinaryPair:
    """Half-adder step: XOR(src0, src1) -> dst_xor, AND -> SA latch.

    ``carry_in=True`` turns each tile's bit 0 into a full-adder position
    with carry-in 1 (the written LSB is inverted and the latch LSB takes
    OR instead of AND polarity) — a single control signal that provides
    the ``+1`` of two's-complement subtraction.
    """

    dst_xor: int
    src0: int
    src1: int
    gate_operand1: bool = False
    carry_in: bool = False


@dataclass(frozen=True)
class CarryStep:
    """Ripple round: c = latch << 1; dst = src ^ c; latch = src & c.

    The latch shift is segmented at tile boundaries; outgoing bits are
    ORed into the per-tile carry-out register (see :class:`CheckCarry`).
    """

    dst: int
    src: int


@dataclass(frozen=True)
class SetLatch:
    """Load the SA latch from a row (or clear it with ``row=None``)."""

    row: Union[int, None] = None


@dataclass(frozen=True)
class CopyGated:
    """Per-tile conditional copy: tiles with a set flag take ``src``."""

    dst: int
    src: int


Instruction = Union[
    Check,
    CheckCarry,
    SetFlags,
    Unary,
    ShiftRow,
    LogicBinary,
    BinaryPair,
    CarryStep,
    SetLatch,
    CopyGated,
]
