"""Program execution with cycle and energy accounting.

The :class:`Executor` interprets Fig 4d instruction streams against an
:class:`~repro.sram.subarray.SRAMSubarray`, updating storage and
peripheral state exactly as the hardware would, while charging each
instruction's cycles and energy from the technology model.

Semantics worth calling out (each mirrors a paper mechanism):

- **Operand gating** (``gate_operand1``): operand 1 is ANDed with the
  expanded per-tile predicate flags — the ``m = M or 0`` selection of
  Algorithm 2 line 11 vectored across tiles.
- **Segmented shifts**: `ShiftRow(segmented=True)` and the `CarryStep`
  latch shift zero-fill at tile boundaries.  Algorithm 2's two
  observations guarantee the discarded bit is 0, which is precisely why
  the whole computation fits in ``n`` columns per tile.
- **Carry-out capture**: bits leaving a tile's MSB during `CarryStep`
  are ORed into the per-tile carry-out register; `CheckCarry` turns them
  into predicate flags (>= comparison for conditional subtraction).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict

from repro.errors import ExecutionError
from repro.sram.energy import TECH_45NM, TechnologyModel
from repro.sram.isa import (
    BinaryOp,
    BinaryPair,
    CarryStep,
    Check,
    CheckCarry,
    CopyGated,
    LogicBinary,
    SetFlags,
    SetLatch,
    ShiftDirection,
    ShiftRow,
    Unary,
    UnaryOp,
)
from repro.sram.program import Program
from repro.sram.subarray import SRAMSubarray


@dataclass
class ExecutionStats:
    """Aggregate counters from one or more program runs."""

    cycles: int = 0
    energy_pj: float = 0.0
    instructions: int = 0
    op_counts: Dict[str, int] = field(default_factory=dict)
    shift_count: int = 0
    section_cycles: Dict[str, int] = field(default_factory=dict)

    def charge(self, kind: str, cycles: int, energy_pj: float) -> None:
        """Record one executed instruction."""
        self.cycles += cycles
        self.energy_pj += energy_pj
        self.instructions += 1
        self.op_counts[kind] = self.op_counts.get(kind, 0) + 1

    def accumulate(self, other: "ExecutionStats") -> None:
        """Fold another stats object into this one."""
        self.cycles += other.cycles
        self.energy_pj += other.energy_pj
        self.instructions += other.instructions
        self.shift_count += other.shift_count
        for k, v in other.op_counts.items():
            self.op_counts[k] = self.op_counts.get(k, 0) + v
        for k, v in other.section_cycles.items():
            self.section_cycles[k] = self.section_cycles.get(k, 0) + v

    @classmethod
    def merge(cls, *stats: "ExecutionStats") -> "ExecutionStats":
        """A new stats object combining several runs (e.g. NTT->mul->INTT)."""
        merged = cls()
        for s in stats:
            merged.accumulate(s)
        return merged

    @property
    def energy_nj(self) -> float:
        """Total energy in nanojoules."""
        return self.energy_pj / 1000.0

    def latency_s(self, tech: TechnologyModel) -> float:
        """Wall-clock time of the recorded cycles at a node's frequency."""
        return tech.cycles_to_seconds(self.cycles)

    def __repr__(self) -> str:
        return (
            f"ExecutionStats(cycles={self.cycles}, "
            f"energy={self.energy_nj:.2f}nJ, instructions={self.instructions})"
        )


class Executor:
    """Interprets programs on a subarray, charging the technology model."""

    def __init__(self, subarray: SRAMSubarray, tech: TechnologyModel = TECH_45NM):
        self.subarray = subarray
        self.tech = tech
        self.stats = ExecutionStats()

    def _charge(self, kind: str) -> None:
        self.stats.charge(
            kind,
            self.tech.instruction_cycles(kind),
            self.tech.instruction_energy_pj(kind),
        )

    def run(self, program: Program) -> ExecutionStats:
        """Execute every instruction; returns stats for *this run only*."""
        before = self.stats.cycles
        run_stats = ExecutionStats()
        # Temporarily swap in a fresh stats object so per-run numbers are
        # isolated, then merge into the lifetime counters.
        lifetime = self.stats
        self.stats = run_stats
        try:
            for instruction in program.instructions:
                self.execute(instruction)
        finally:
            self.stats = lifetime
        # Attribute section cycles using the program's recorded ranges and
        # the per-instruction cycle table (1 cycle default).
        cursor = 0
        cycle_at = []
        for instruction in program.instructions:
            kind = _instruction_kind(instruction)
            cursor += self.tech.instruction_cycles(kind)
            cycle_at.append(cursor)
        _attribute_sections(program, cycle_at, run_stats.section_cycles)
        self.stats.accumulate(run_stats)
        assert self.stats.cycles >= before
        return run_stats

    def execute(self, instruction) -> None:
        """Execute a single instruction (dispatch by type)."""
        sub = self.subarray
        storage = sub.storage
        logic = sub.logic

        if isinstance(instruction, Check):
            value = storage.read_row(instruction.row)
            flags = sub.extract_tile_bits(value, instruction.bit_index)
            if instruction.invert:
                flags = (~flags) & ((1 << sub.num_tiles) - 1)
            sub.flags = flags
            self._charge("check")

        elif isinstance(instruction, CheckCarry):
            flags = sub.carry_out
            if instruction.invert:
                flags = (~flags) & ((1 << sub.num_tiles) - 1)
            sub.flags = flags
            sub.carry_out = 0
            self._charge("check")

        elif isinstance(instruction, SetFlags):
            sub.flags = instruction.mask & ((1 << sub.num_tiles) - 1)
            self._charge("check")

        elif isinstance(instruction, Unary):
            if instruction.op is UnaryOp.ZERO:
                out = 0
            elif instruction.op is UnaryOp.COPY:
                out = storage.read_row(instruction.src)
            elif instruction.op is UnaryOp.NOT:
                value = storage.read_row(instruction.src)
                out = (~value) & ((1 << sub.cols) - 1)
            else:  # pragma: no cover - enum is exhaustive
                raise ExecutionError(f"unknown unary op {instruction.op}")
            if instruction.set_lsb:
                out |= _lsb_columns(sub)
            storage.write_row(instruction.dst, out)
            self._charge("unary")

        elif isinstance(instruction, ShiftRow):
            value = storage.read_row(instruction.src)
            segment = sub.tile_width if instruction.segmented else 0
            result = logic.shift_segmented(
                value, instruction.direction is ShiftDirection.LEFT, segment
            )
            storage.write_row(instruction.dst, result.value)
            self.stats.shift_count += 1
            self._charge("shift")

        elif isinstance(instruction, LogicBinary):
            a = storage.read_row(instruction.src0)
            b = storage.read_row(instruction.src1)
            if instruction.gate_operand1:
                b &= sub.expand_flags(sub.flags)
            op = instruction.op
            if op is BinaryOp.AND:
                out = logic.logic_and(a, b)
            elif op is BinaryOp.OR:
                out = logic.logic_or(a, b)
            elif op is BinaryOp.XOR:
                out = logic.logic_xor(a, b)
            elif op is BinaryOp.NOR:
                out = logic.logic_nor(a, b)
            else:  # pragma: no cover - enum is exhaustive
                raise ExecutionError(f"unknown binary op {op}")
            storage.write_row(instruction.dst, out)
            self._charge("logic")

        elif isinstance(instruction, BinaryPair):
            a = storage.read_row(instruction.src0)
            b = storage.read_row(instruction.src1)
            if instruction.gate_operand1:
                b &= sub.expand_flags(sub.flags)
            xor_out = logic.logic_xor(a, b)
            and_out = logic.logic_and(a, b)
            if instruction.carry_in:
                # Bit 0 of every tile becomes a full-adder position with
                # carry-in 1: sum LSB flips, latch LSB takes OR polarity.
                lsb = _lsb_columns(sub)
                xor_out ^= lsb
                and_out = (and_out & ~lsb) | (logic.logic_or(a, b) & lsb)
            storage.write_row(instruction.dst_xor, xor_out)
            sub.latch = and_out
            sub.carry_out = 0
            self._charge("pair")

        elif isinstance(instruction, CarryStep):
            shifted = logic.shift_segmented(sub.latch, True, sub.tile_width)
            sub.carry_out |= shifted.out_bits
            row = storage.read_row(instruction.src)
            storage.write_row(instruction.dst, logic.logic_xor(row, shifted.value))
            sub.latch = logic.logic_and(row, shifted.value)
            self._charge("carry_step")

        elif isinstance(instruction, SetLatch):
            sub.latch = 0 if instruction.row is None else storage.read_row(instruction.row)
            self._charge("set_latch")

        elif isinstance(instruction, CopyGated):
            gate = sub.expand_flags(sub.flags)
            current = storage.read_row(instruction.dst)
            incoming = storage.read_row(instruction.src)
            storage.write_row(instruction.dst, (current & ~gate) | (incoming & gate))
            self._charge("copy_gated")

        else:
            raise ExecutionError(f"unknown instruction {instruction!r}")


def profile_program(program: Program, tech: TechnologyModel = TECH_45NM) -> ExecutionStats:
    """Cost a program *without* executing it.

    Cycles and energy are charged per instruction class from fixed
    tables, so they are a pure function of the instruction mix — the
    stats returned here are identical to what :meth:`Executor.run` would
    report for the same program on any data (asserted in the tests).
    The serving simulator uses this to price a kernel invocation once
    per compiled program instead of interpreting millions of bitline
    operations per batch.
    """
    stats = ExecutionStats()
    cycle_at = []
    for instruction in program.instructions:
        kind = _instruction_kind(instruction)
        stats.charge(kind, tech.instruction_cycles(kind), tech.instruction_energy_pj(kind))
        if isinstance(instruction, ShiftRow):
            stats.shift_count += 1
        cycle_at.append(stats.cycles)
    _attribute_sections(program, cycle_at, stats.section_cycles)
    return stats


def _attribute_sections(program: Program, cycle_at, section_cycles: Dict[str, int]) -> None:
    """Fold each section's cycle span into ``section_cycles`` in place.

    ``cycle_at[i]`` is the cumulative cycle count after instruction
    ``i`` — the one attribution rule shared by execution and static
    profiling, which is what keeps the two paths cycle-identical.
    """
    for label, start, end in program.sections:
        if end > len(cycle_at):
            raise ExecutionError(f"section {label!r} exceeds program length")
        start_cycles = cycle_at[start - 1] if start else 0
        end_cycles = cycle_at[end - 1] if end else 0
        section_cycles[label] = section_cycles.get(label, 0) + (
            end_cycles - start_cycles
        )


def _lsb_columns(sub: SRAMSubarray) -> int:
    """Mask with a 1 in the LSB column of every tile."""
    mask_bits = 0
    for tile in range(sub.num_tiles):
        mask_bits |= 1 << (tile * sub.tile_width)
    return mask_bits


def _instruction_kind(instruction) -> str:
    """Map an instruction to its technology-model class name."""
    if isinstance(instruction, (Check, CheckCarry, SetFlags)):
        return "check"
    if isinstance(instruction, Unary):
        return "unary"
    if isinstance(instruction, ShiftRow):
        return "shift"
    if isinstance(instruction, LogicBinary):
        return "logic"
    if isinstance(instruction, BinaryPair):
        return "pair"
    if isinstance(instruction, CarryStep):
        return "carry_step"
    if isinstance(instruction, SetLatch):
        return "set_latch"
    if isinstance(instruction, CopyGated):
        return "copy_gated"
    raise ExecutionError(f"unknown instruction {instruction!r}")
