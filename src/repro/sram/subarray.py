"""The SRAM subarray: storage + peripheral state.

One :class:`SRAMSubarray` is the compute unit of BP-NTT: a grid of 6T
cells (default 256x256, following the ARM Cortex-M0+ class device the
paper sizes against), the sense-amplifier logic, the SA shift latch,
and the small per-tile registers implied by vectored execution:

- ``flags``   — per-tile predicate latch, loaded by *Check*, consumed by
  operand gating and :class:`~repro.sram.isa.CopyGated`;
- ``carry_out`` — per-tile sticky register accumulating bits shifted out
  of each tile's MSB during :class:`~repro.sram.isa.CarryStep`, i.e. the
  adder carry-out used for >= tests.

The subarray is divided into ``cols // tile_width`` tiles of
``tile_width`` columns; each tile is an independent vector lane
processing its own polynomial (Fig 5a).
"""

from __future__ import annotations

from repro.errors import LayoutError, ParameterError
from repro.sram.bitmatrix import BitMatrix
from repro.sram.senseamp import SenseAmpLogic
from repro.utils.bitops import mask


class SRAMSubarray:
    """A compute-enabled SRAM subarray with tile-vector peripherals."""

    def __init__(self, rows: int = 256, cols: int = 256, tile_width: int = 16):
        if tile_width <= 0 or cols % tile_width:
            raise ParameterError(
                f"tile width {tile_width} must divide column count {cols}"
            )
        self.storage = BitMatrix(rows, cols)
        self.logic = SenseAmpLogic(cols)
        self.rows = rows
        self.cols = cols
        self.tile_width = tile_width
        self.num_tiles = cols // tile_width
        self.latch = 0           # SA shift latch contents (one bit per column)
        self.flags = 0           # per-tile predicate latch (one bit per tile)
        self.carry_out = 0       # per-tile sticky carry-out (one bit per tile)
        self._col_mask = mask(cols)
        self._tile_mask = mask(self.num_tiles)

    # -- tile-addressed data access (host side, not part of programs) ----

    def tile_col_base(self, tile: int) -> int:
        """First column of a tile."""
        if not 0 <= tile < self.num_tiles:
            raise LayoutError(f"tile {tile} out of range [0, {self.num_tiles})")
        return tile * self.tile_width

    def write_word(self, row: int, tile: int, value: int) -> None:
        """Host write of one ``tile_width``-bit word into a tile's row."""
        if value < 0 or value >= (1 << self.tile_width):
            raise LayoutError(
                f"value {value} does not fit in a {self.tile_width}-bit tile word"
            )
        base = self.tile_col_base(tile)
        current = self.storage.read_row(row)
        cleared = current & ~(mask(self.tile_width) << base)
        self.storage.write_row(row, cleared | (value << base))

    def read_word(self, row: int, tile: int) -> int:
        """Host read of one tile word."""
        base = self.tile_col_base(tile)
        return (self.storage.read_row(row) >> base) & mask(self.tile_width)

    def broadcast_word(self, row: int, value: int) -> None:
        """Write the same word into every tile of a row (e.g. the modulus)."""
        for tile in range(self.num_tiles):
            self.write_word(row, tile, value)

    # -- per-tile flag helpers -------------------------------------------

    def expand_flags(self, flags: int) -> int:
        """Expand per-tile flag bits into a full-width column mask.

        Tile ``t``'s flag fills all ``tile_width`` columns of tile ``t``.
        This is the gating mask applied to operand 1 by the predicate
        latch hardware.
        """
        expanded = 0
        tile_fill = mask(self.tile_width)
        for tile in range(self.num_tiles):
            if (flags >> tile) & 1:
                expanded |= tile_fill << (tile * self.tile_width)
        return expanded

    def extract_tile_bits(self, row_value: int, bit_index: int) -> int:
        """Collect bit ``bit_index`` of every tile into a flag vector."""
        if not 0 <= bit_index < self.tile_width:
            raise LayoutError(
                f"bit index {bit_index} out of tile range [0, {self.tile_width})"
            )
        flags = 0
        for tile in range(self.num_tiles):
            col = tile * self.tile_width + bit_index
            if (row_value >> col) & 1:
                flags |= 1 << tile
        return flags

    def reset_peripherals(self) -> None:
        """Clear latch, flags and carry-out (program prologue state)."""
        self.latch = 0
        self.flags = 0
        self.carry_out = 0

    def __repr__(self) -> str:
        return (
            f"SRAMSubarray({self.rows}x{self.cols}, "
            f"{self.num_tiles} tiles x {self.tile_width} bits)"
        )
