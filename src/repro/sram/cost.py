"""The shared cycle/energy cost report every layer prices with.

Before this module existed, each consumer of
:class:`~repro.sram.executor.ExecutionStats` rederived the same
quantities by hand: ``repro.serve.pool`` turned picojoules into
nanojoules and cycles into seconds for its ``ServiceProfile``,
``repro.core.engine`` did the identical arithmetic for ``NTTRunReport``,
and ``repro.analysis.sweeps`` unpacked ad-hoc tuples.  A
:class:`CostReport` is that derivation done once: an immutable snapshot
of one priced kernel invocation, with the unit conversions as
properties and the replication rule for ganged subarrays (energy
scales, latency does not) as a method.

It lives in the sram layer — below ``repro.core`` and
``repro.backends`` — so both can import it without cycles; the
``repro.backends`` package re-exports it as part of the backend
protocol (``Backend.profile() -> CostReport``).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import TYPE_CHECKING, Dict

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for typing only
    from repro.sram.energy import TechnologyModel
    from repro.sram.executor import ExecutionStats


@dataclass(frozen=True)
class CostReport:
    """The price of one kernel invocation on one execution substrate.

    Attributes:
        cycles: clock cycles of the (concurrently run) instruction
            stream — flat under replication.
        energy_pj: total energy in picojoules across all replicas.
        latency_s: wall-clock seconds at the technology node's clock.
        instructions: instructions executed across all replicas.
        shift_count: `ShiftRow` operations across all replicas.
        section_cycles: per-section cycle attribution (one replica's,
            since replicas advance in lockstep).
    """

    cycles: int
    energy_pj: float
    latency_s: float
    instructions: int = 0
    shift_count: int = 0
    section_cycles: Dict[str, int] = field(default_factory=dict)

    @property
    def energy_nj(self) -> float:
        """Total energy in nanojoules."""
        return self.energy_pj / 1000.0

    def energy_per_item_nj(self, items: int) -> float:
        """Energy split across ``items`` co-batched polynomials."""
        return self.energy_nj / items

    @classmethod
    def from_stats(cls, stats: "ExecutionStats",
                   tech: "TechnologyModel") -> "CostReport":
        """Convert executor/profiler counters into a priced report."""
        return cls(
            cycles=stats.cycles,
            energy_pj=stats.energy_pj,
            latency_s=stats.latency_s(tech),
            instructions=stats.instructions,
            shift_count=stats.shift_count,
            section_cycles=dict(stats.section_cycles),
        )

    def replicate(self, copies: int) -> "CostReport":
        """The cost of ``copies`` subarrays running this program in
        lockstep: energy, instructions and shifts multiply; cycles and
        latency stay flat (the paper's ganged-subarray accounting)."""
        if copies == 1:
            return self
        if copies < 1:
            raise ValueError(f"copies must be >= 1, got {copies}")
        return replace(
            self,
            energy_pj=self.energy_pj * copies,
            instructions=self.instructions * copies,
            shift_count=self.shift_count * copies,
        )
