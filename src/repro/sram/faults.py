"""Fault injection for the SRAM substrate.

Real in-SRAM computing must tolerate marginal sensing: multi-row
activation degrades noise margins, and a slow sense amplifier reads the
wrong value.  This module models those upsets as bit flips so the test
suite can demonstrate two properties of the BP-NTT stack:

1. **Detection** — the engine's gold-model verification catches any
   injected fault that corrupts a result (no silent wrong answers in
   the validation flow of §V-A).
2. **Locality** — a fault in one tile never corrupts *other* tiles
   (operand gating and segmented shifts keep lanes independent).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import List, Optional

from repro.errors import ParameterError
from repro.sram.subarray import SRAMSubarray


@dataclass(frozen=True)
class FaultRecord:
    """One injected upset."""

    row: int
    col: int

    @property
    def tile_of(self) -> Optional[int]:
        """Filled in by the injector when tile geometry is known."""
        return None


@dataclass
class FaultInjector:
    """Flips stored bits in a subarray, deterministically per seed."""

    subarray: SRAMSubarray
    seed: int = 0
    injected: List[FaultRecord] = field(default_factory=list)

    def flip_bit(self, row: int, col: int) -> FaultRecord:
        """Invert a single cell."""
        current = self.subarray.storage.get_bit(row, col)
        self.subarray.storage.set_bit(row, col, 1 - current)
        record = FaultRecord(row=row, col=col)
        self.injected.append(record)
        return record

    def flip_random_bits(self, count: int, *, row_range: range = None) -> List[FaultRecord]:
        """Flip ``count`` uniformly random cells (optionally row-bounded)."""
        if count <= 0:
            raise ParameterError(f"fault count must be positive, got {count}")
        rng = random.Random(self.seed)
        rows = row_range if row_range is not None else range(self.subarray.rows)
        records = []
        for _ in range(count):
            row = rng.choice(rows)
            col = rng.randrange(self.subarray.cols)
            records.append(self.flip_bit(row, col))
        return records

    def flip_in_tile(self, tile: int, row: int, bit_index: int) -> FaultRecord:
        """Flip one bit of a specific tile's word at ``row``."""
        if not 0 <= bit_index < self.subarray.tile_width:
            raise ParameterError(
                f"bit index {bit_index} outside tile width {self.subarray.tile_width}"
            )
        col = self.subarray.tile_col_base(tile) + bit_index
        return self.flip_bit(row, col)

    def tiles_touched(self) -> set:
        """Set of tile indices any injected fault landed in."""
        return {
            record.col // self.subarray.tile_width for record in self.injected
        }
