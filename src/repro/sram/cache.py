"""Cache-hierarchy integration (Fig 4a-c).

BP-NTT re-purposes subarrays inside an existing cache: each LLC slice
holds several banks, each bank typically four subarrays; one subarray
per bank is reserved for memory-mapped CTRL/CMD storage and the rest
become vector compute units.  Banks running the same kernel share the
CTRL/CMD subarray.

This module models that organization for capacity/area roll-ups and for
dispatching one logical NTT batch across several physical subarrays.
The security property the paper emphasizes — plaintext never leaves the
chip — is structural here: all state lives inside :class:`CacheBank`
objects; there is no modeled off-chip path.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.errors import CapacityError, ParameterError
from repro.sram.energy import TECH_45NM, TechnologyModel
from repro.sram.subarray import SRAMSubarray


@dataclass(frozen=True)
class BankGeometry:
    """Physical shape of one SRAM bank."""

    subarrays_per_bank: int = 4
    rows: int = 256
    cols: int = 256

    def __post_init__(self) -> None:
        if self.subarrays_per_bank < 2:
            raise ParameterError(
                "a bank needs at least 2 subarrays (1 CTRL/CMD + 1 data)"
            )


class CacheBank:
    """One bank: a CTRL/CMD subarray plus data subarrays.

    The CTRL/CMD subarray stores instruction streams (it performs no
    bitline compute); the data subarrays are
    :class:`~repro.sram.subarray.SRAMSubarray` compute units.
    """

    def __init__(self, geometry: BankGeometry = BankGeometry(), tile_width: int = 16):
        self.geometry = geometry
        self.tile_width = tile_width
        self.data_subarrays: List[SRAMSubarray] = [
            SRAMSubarray(geometry.rows, geometry.cols, tile_width)
            for _ in range(geometry.subarrays_per_bank - 1)
        ]

    @property
    def compute_units(self) -> int:
        """Number of data (compute) subarrays."""
        return len(self.data_subarrays)

    @property
    def parallel_lanes(self) -> int:
        """Total vector lanes (tiles) across the bank's data subarrays."""
        return sum(sub.num_tiles for sub in self.data_subarrays)

    def area_mm2(self, tech: TechnologyModel = TECH_45NM) -> float:
        """Total bank area including the CTRL/CMD subarray."""
        per_subarray = tech.subarray_area_mm2(self.geometry.rows, self.geometry.cols)
        return per_subarray * self.geometry.subarrays_per_bank


class LLCSlice:
    """A last-level-cache slice holding several BP-NTT banks."""

    def __init__(self, num_banks: int = 4, geometry: BankGeometry = BankGeometry(),
                 tile_width: int = 16):
        if num_banks <= 0:
            raise ParameterError(f"need at least one bank, got {num_banks}")
        self.banks = [CacheBank(geometry, tile_width) for _ in range(num_banks)]

    @property
    def parallel_lanes(self) -> int:
        """Vector lanes across the whole slice."""
        return sum(bank.parallel_lanes for bank in self.banks)

    def area_mm2(self, tech: TechnologyModel = TECH_45NM) -> float:
        """Slice area."""
        return sum(bank.area_mm2(tech) for bank in self.banks)

    def allocate_lanes(self, count: int) -> List[SRAMSubarray]:
        """Pick the smallest set of subarrays covering ``count`` lanes."""
        if count <= 0:
            raise ParameterError(f"lane count must be positive, got {count}")
        chosen: List[SRAMSubarray] = []
        covered = 0
        for bank in self.banks:
            for sub in bank.data_subarrays:
                if covered >= count:
                    return chosen
                chosen.append(sub)
                covered += sub.num_tiles
        if covered < count:
            raise CapacityError(
                f"slice provides {covered} lanes, {count} requested"
            )
        return chosen
