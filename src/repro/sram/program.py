"""Instruction sequences with provenance metadata.

A :class:`Program` is the unit the CTRL/CMD subarray streams to a data
subarray.  It is a thin list wrapper that also records *sections* — the
compiler marks which instruction ranges belong to which algorithm phase
(e.g. ``modmul``, ``carry_resolve``, ``mod_add``) so benches can report
per-phase cycle breakdowns and the shift-count ablation can attribute
shifts to phases.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Tuple

from repro.errors import IsaError
from repro.sram.isa import Instruction


@dataclass
class Program:
    """An ordered list of instructions plus named sections."""

    name: str = "program"
    instructions: List[Instruction] = field(default_factory=list)
    sections: List[Tuple[str, int, int]] = field(default_factory=list)
    _open_section: Tuple[str, int] = field(default=None, repr=False)

    def emit(self, instruction: Instruction) -> None:
        """Append one instruction."""
        self.instructions.append(instruction)

    def extend(self, instructions) -> None:
        """Append several instructions."""
        self.instructions.extend(instructions)

    def begin_section(self, label: str) -> None:
        """Open a named range; close it with :meth:`end_section`."""
        if self._open_section is not None:
            raise IsaError(
                f"section {self._open_section[0]!r} still open; sections do not nest"
            )
        self._open_section = (label, len(self.instructions))

    def end_section(self) -> None:
        """Close the currently open section."""
        if self._open_section is None:
            raise IsaError("no section open")
        label, start = self._open_section
        self.sections.append((label, start, len(self.instructions)))
        self._open_section = None

    def append_program(self, other: "Program") -> None:
        """Concatenate another program, shifting its section offsets."""
        offset = len(self.instructions)
        self.instructions.extend(other.instructions)
        for label, start, end in other.sections:
            self.sections.append((label, start + offset, end + offset))

    def section_histogram(self) -> Dict[str, int]:
        """Instruction counts per section label (aggregated)."""
        hist: Dict[str, int] = {}
        for label, start, end in self.sections:
            hist[label] = hist.get(label, 0) + (end - start)
        return hist

    def __len__(self) -> int:
        return len(self.instructions)

    def __iter__(self) -> Iterator[Instruction]:
        return iter(self.instructions)

    def __repr__(self) -> str:
        return f"Program({self.name!r}, {len(self.instructions)} instructions)"
