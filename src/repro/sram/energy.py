"""Technology model: 45 nm timing, energy and area constants.

The paper builds SRAM arrays with PyMTL3 + OpenRAM and extracts timing
and area with Synopsys DC / Cadence Innovus (§V-A).  Those tools are not
reproducible in a pure-Python environment, so this module plays their
role: a single table of per-operation latency/energy constants plus an
area model, **calibrated** so the BP-NTT 256-point / 16-bit operating
point lands on the paper's Table I row (3.8 GHz, 61.9 us, 69.4 nJ per
batch, 0.063 mm^2).

Everything derived (Fig 8 sweeps, Table I ratios) is *generated* from
instruction counts produced by the cycle-accurate executor — only these
base constants are fitted, exactly as a circuit-level characterization
would provide them.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict

from repro.errors import ParameterError

#: Energy per instruction class, picojoules.  A two-row activation with
#: sense and writeback dominates; shifts and checks exercise less of the
#: array.  Values fitted to Table I (see module docstring).
DEFAULT_ENERGY_PJ: Dict[str, float] = {
    "logic": 0.244,       # two-row activation + SA logic + row writeback
    "pair": 0.260,        # same + latch load
    "carry_step": 0.260,  # row activation + latch shift + writeback
    "shift": 0.168,       # single-row read, latch shift, writeback
    "unary": 0.153,       # single-row read + writeback
    "check": 0.061,       # single-column sense into the predicate latch
    "copy_gated": 0.153,  # writeback masked by per-tile write enables
    "set_latch": 0.092,   # single-row read into the latch
    "row_write": 0.115,   # host data load (setup, outside kernels)
    "row_read": 0.076,    # host data readout
}

#: Cycles per instruction class.  The design is pipelined so one
#: activate-sense-writeback completes per clock (the paper's clock count
#: treats each bitline operation as one cycle).
DEFAULT_CYCLES: Dict[str, int] = {
    "logic": 1,
    "pair": 1,
    "carry_step": 1,
    "shift": 1,
    "unary": 1,
    "check": 1,
    "copy_gated": 1,
    "set_latch": 1,
    "row_write": 1,
    "row_read": 1,
}


@dataclass(frozen=True)
class TechnologyModel:
    """A process node characterization for the subarray.

    Attributes:
        name: label, e.g. ``"45nm"``.
        frequency_hz: subarray clock (Table I: 3.8 GHz at 45 nm).
        cell_area_um2: 6T bit-cell area.
        periphery_factor: array area multiplier covering decoders, SAs,
            drivers (OpenRAM-style overhead).
        compute_overhead: extra area for the BP-NTT SA modifications
            (paper: "less than 2%").
        energy_pj: per-instruction-class energy table.
        cycles: per-instruction-class cycle table.
    """

    name: str = "45nm"
    frequency_hz: float = 3.8e9
    cell_area_um2: float = 0.38
    periphery_factor: float = 2.48
    compute_overhead: float = 0.02
    energy_pj: Dict[str, float] = field(default_factory=lambda: dict(DEFAULT_ENERGY_PJ))
    cycles: Dict[str, int] = field(default_factory=lambda: dict(DEFAULT_CYCLES))

    def subarray_area_mm2(self, rows: int, cols: int) -> float:
        """Silicon area of one compute-enabled subarray.

        For the 256x256 reference geometry this evaluates to ~0.063 mm^2,
        matching Table I.
        """
        if rows <= 0 or cols <= 0:
            raise ParameterError("subarray dimensions must be positive")
        cell_mm2 = self.cell_area_um2 * 1e-6
        array = rows * cols * cell_mm2
        return array * self.periphery_factor * (1.0 + self.compute_overhead)

    def instruction_energy_pj(self, kind: str) -> float:
        """Energy for one instruction of class ``kind``."""
        try:
            return self.energy_pj[kind]
        except KeyError:
            raise ParameterError(f"unknown instruction class {kind!r}") from None

    def instruction_cycles(self, kind: str) -> int:
        """Cycles for one instruction of class ``kind``."""
        try:
            return self.cycles[kind]
        except KeyError:
            raise ParameterError(f"unknown instruction class {kind!r}") from None

    def cycles_to_seconds(self, cycle_count: int) -> float:
        """Convert a cycle count into wall-clock seconds at this node."""
        return cycle_count / self.frequency_hz

    def scale_to(self, target_nm: float, source_nm: float = 45.0) -> "TechnologyModel":
        """First-order Dennard projection to another node.

        Area scales with the square of feature size, frequency inversely,
        and per-op energy with the cube (V^2 * C).  This is the same
        apples-to-apples normalization Table I applies to baselines
        reported at other nodes ("projected to 45nm").
        """
        if target_nm <= 0 or source_nm <= 0:
            raise ParameterError("feature sizes must be positive")
        s = target_nm / source_nm
        return TechnologyModel(
            name=f"{target_nm:g}nm",
            frequency_hz=self.frequency_hz / s,
            cell_area_um2=self.cell_area_um2 * s * s,
            periphery_factor=self.periphery_factor,
            compute_overhead=self.compute_overhead,
            energy_pj={k: v * s**3 for k, v in self.energy_pj.items()},
            cycles=dict(self.cycles),
        )


#: The calibrated 45 nm node used throughout the evaluation.
TECH_45NM = TechnologyModel()
