"""Disassembly and execution tracing for BP-NTT programs.

Debugging microcode needs two views the executor alone does not give:

- :func:`disassemble` — human-readable listing of a program, with
  section markers (what the CTRL/CMD subarray holds);
- :class:`TracingExecutor` — an executor that additionally records, per
  instruction, which rows changed and the peripheral state, with a ring
  buffer so tracing a 300k-instruction NTT stays bounded.

Both are used by the test suite to pin instruction-stream regressions
and by developers porting the compiler to new layouts.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Deque, List, Optional

from repro.errors import ParameterError
from repro.sram.executor import Executor
from repro.sram.isa import (
    BinaryPair,
    CarryStep,
    Check,
    CheckCarry,
    CopyGated,
    LogicBinary,
    SetFlags,
    SetLatch,
    ShiftRow,
    Unary,
)
from repro.sram.program import Program


def format_instruction(instruction) -> str:
    """One-line assembly-style rendering of an instruction."""
    if isinstance(instruction, Check):
        inv = "!" if instruction.invert else ""
        return f"check  {inv}r{instruction.row}[{instruction.bit_index}]"
    if isinstance(instruction, CheckCarry):
        inv = "!" if instruction.invert else ""
        return f"checkc {inv}carry_out"
    if isinstance(instruction, SetFlags):
        return f"flags  {instruction.mask:#x}"
    if isinstance(instruction, Unary):
        suffix = "+lsb" if instruction.set_lsb else ""
        return f"{instruction.op.value:<6} r{instruction.dst} <- r{instruction.src}{suffix}"
    if isinstance(instruction, ShiftRow):
        seg = "seg" if instruction.segmented else "arr"
        return (
            f"shift  r{instruction.dst} <- r{instruction.src} "
            f"{instruction.direction.value}/{seg}"
        )
    if isinstance(instruction, LogicBinary):
        gate = "?" if instruction.gate_operand1 else ""
        return (
            f"{instruction.op.value:<6} r{instruction.dst} <- "
            f"r{instruction.src0}, r{instruction.src1}{gate}"
        )
    if isinstance(instruction, BinaryPair):
        gate = "?" if instruction.gate_operand1 else ""
        cin = "+cin" if instruction.carry_in else ""
        return (
            f"pair   r{instruction.dst_xor} <- "
            f"r{instruction.src0}, r{instruction.src1}{gate}{cin}"
        )
    if isinstance(instruction, CarryStep):
        return f"cstep  r{instruction.dst} <- r{instruction.src}, latch<<1"
    if isinstance(instruction, CopyGated):
        return f"cpgate r{instruction.dst} <- r{instruction.src} ?flags"
    if isinstance(instruction, SetLatch):
        src = "0" if instruction.row is None else f"r{instruction.row}"
        return f"latch  <- {src}"
    raise ParameterError(f"unknown instruction {instruction!r}")


def disassemble(program: Program, limit: Optional[int] = None) -> str:
    """Listing of a program with section markers.

    ``limit`` truncates long programs (a 256-point NTT has ~300k
    instructions); the truncation is reported in the output.
    """
    starts = {start: label for label, start, _ in program.sections}
    lines: List[str] = [f"; program {program.name}: {len(program)} instructions"]
    count = len(program) if limit is None else min(limit, len(program))
    for index in range(count):
        if index in starts:
            lines.append(f".{starts[index]}:")
        lines.append(f"  {index:>6}  {format_instruction(program.instructions[index])}")
    if count < len(program):
        lines.append(f"  ... ({len(program) - count} more)")
    return "\n".join(lines)


@dataclass(frozen=True)
class TraceEntry:
    """State delta of one executed instruction.

    ``cycle_cost`` is the cycles this one instruction charged (from the
    executor's technology model) — what lets
    :func:`repro.obs.tracer.program_events` place the entries on a
    wall-clock axis next to the serving-layer lifecycle events.
    """

    index: int
    text: str
    changed_rows: tuple
    flags: int
    latch: int
    cycle_cost: int = 0


class TracingExecutor(Executor):
    """Executor recording per-instruction row deltas in a ring buffer."""

    def __init__(self, subarray, tech=None, *, capacity: int = 1024):
        if capacity <= 0:
            raise ParameterError(f"trace capacity must be positive, got {capacity}")
        if tech is None:
            super().__init__(subarray)
        else:
            super().__init__(subarray, tech)
        self.trace: Deque[TraceEntry] = deque(maxlen=capacity)
        self._counter = 0

    def execute(self, instruction) -> None:
        before = self.subarray.storage.snapshot()
        cycles_before = self.stats.cycles
        super().execute(instruction)
        after = self.subarray.storage.snapshot()
        changed = tuple(
            row for row, (a, b) in enumerate(zip(before, after)) if a != b
        )
        self.trace.append(
            TraceEntry(
                index=self._counter,
                text=format_instruction(instruction),
                changed_rows=changed,
                flags=self.subarray.flags,
                latch=self.subarray.latch,
                cycle_cost=self.stats.cycles - cycles_before,
            )
        )
        self._counter += 1

    def format_trace(self, last: int = 20) -> str:
        """The most recent ``last`` trace entries, formatted."""
        entries = list(self.trace)[-last:]
        lines = []
        for e in entries:
            rows = ",".join(f"r{r}" for r in e.changed_rows) or "-"
            lines.append(
                f"{e.index:>6}  {e.text:<34} wrote:{rows:<10} "
                f"flags={e.flags:#x} latch={e.latch:#x}"
            )
        return "\n".join(lines)
