"""Carry-save adder primitives on fixed-width integers.

The paper eliminates carry propagation (§IV-D, "inspired by carry-save
adder design") by representing the Montgomery accumulator as a pair
``(Sum, Carry)`` with value ``P = Sum + 2*Carry``.  Adding a third
operand is then a 3:2 compression built from bitwise AND/XOR — exactly
the operations a multi-row SRAM activation provides.

These helpers operate on plain Python ints restricted to ``width`` bits
so invariants (like "the compressed carries are disjoint", which lets
the paper use a cheap OR instead of an add) can be asserted eagerly.
"""

from __future__ import annotations

from typing import Tuple

from repro.errors import ParameterError
from repro.utils.bitops import mask


def half_add(a: int, b: int, width: int) -> Tuple[int, int]:
    """One half-adder layer: ``a + b == sum_bits + 2 * carry_bits``.

    Returns ``(carry, sum)`` — note carry first, matching the paper's
    ``c1, s1 = {A & B, A xor B}`` notation.  Raises if the shifted carry
    would overflow ``width`` bits (callers rely on the paper's
    Observation 1 to guarantee it never does).
    """
    m = mask(width)
    if a > m or b > m or a < 0 or b < 0:
        raise ParameterError(f"operands must be {width}-bit non-negative values")
    return a & b, a ^ b


def carry_save_add(sum_bits: int, carry_bits: int, addend: int, width: int) -> Tuple[int, int]:
    """Add ``addend`` into a carry-save accumulator (lines 6-9 of Algorithm 2).

    The accumulator value is ``P = sum_bits + 2 * carry_bits``; the
    result pair satisfies ``P' = P + addend``.  Internally this is the
    paper's sequence: half-add Sum with the addend, shift Carry left to
    align it, half-add again, then OR the two carry vectors (provably
    disjoint — asserted here).
    """
    m = mask(width)
    if carry_bits >> (width - 1):
        raise ParameterError(
            "Carry MSB set before left shift; the paper's Observation 1 "
            "(top Carry bit always 0) does not hold for these operands"
        )
    c1, s1 = half_add(sum_bits & m, addend & m, width)
    shifted_carry = (carry_bits << 1) & m
    c2, new_sum = shifted_carry & s1, shifted_carry ^ s1
    if c1 & c2:
        raise ParameterError("carry vectors overlap; 3:2 compression invariant broken")
    return c1 | c2, new_sum


def resolve_carry(sum_bits: int, carry_bits: int) -> int:
    """Collapse a carry-save pair into its integer value ``Sum + 2*Carry``.

    This is the final carry propagation the in-SRAM design defers to the
    very end of a multiplication (done there with ripple addition).
    """
    return sum_bits + (carry_bits << 1)
