"""Montgomery arithmetic: word-level reference and the paper's Algorithm 2.

- :mod:`repro.mont.word` — the textbook word-level Montgomery REDC used
  to define what the bit-parallel algorithm must compute.
- :mod:`repro.mont.csa` — carry-save 3:2 compressor primitives on
  fixed-width bit vectors (the Sum/Carry machinery of §IV-D).
- :mod:`repro.mont.bitparallel` — the functional model of Algorithm 2,
  step-traceable so Fig. 6 of the paper can be reproduced exactly.
"""

from repro.mont.bitparallel import (
    BitParallelResult,
    IterationTrace,
    bp_modmul,
    bp_modmul_traced,
    bp_modmul_vanilla,
    format_trace,
    montgomery_expected,
    safe_modulus_bound,
)
from repro.mont.csa import carry_save_add, half_add, resolve_carry
from repro.mont.word import MontgomeryContext

__all__ = [
    "BitParallelResult",
    "IterationTrace",
    "bp_modmul",
    "bp_modmul_traced",
    "bp_modmul_vanilla",
    "format_trace",
    "montgomery_expected",
    "safe_modulus_bound",
    "carry_save_add",
    "half_add",
    "resolve_carry",
    "MontgomeryContext",
]
