"""Functional model of the paper's Algorithm 2: in-memory bit-parallel
Montgomery modular multiplication.

The algorithm scans the multiplier ``A`` bit by bit (LSB first).  The
accumulator ``P`` is kept in carry-save form ``P = Sum + 2*Carry`` so
each step needs only bitwise AND / XOR / OR plus 1-bit shifts — the
exact repertoire of a multi-row SRAM activation with the modified sense
amplifier of Fig. 5(b).  Per iteration:

1. if ``a_i == 1``: ``P += B`` via one 3:2 carry-save compression
   (lines 5–10).  The Carry vector is shifted *left* one bit first —
   safe because its top bit is always 0 (the paper's Observation 1).
2. unconditionally: ``m = M if LSB(P) else 0``; ``P = (P + m) >> 1``
   (lines 11–16).  After adding ``m`` the LSB is always 0 (Observation
   2), so the right shift is exact.

After ``width`` iterations ``P == A * B * 2^-width  (mod M)`` with
``P <= 2M - 1``; a single conditional subtraction canonicalizes it.

This module is *functional* (plain ints): it validates the mathematics
and provides the traced variant used to reproduce the paper's Fig. 6
worked example.  The cycle-level compilation of the same steps onto the
SRAM substrate lives in :mod:`repro.core.modmul`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List

from repro.errors import ParameterError
from repro.mont.csa import carry_save_add, half_add, resolve_carry


def montgomery_expected(a: int, b: int, modulus: int, width: int) -> int:
    """The contract Algorithm 2 must meet: ``a * b * 2^-width mod M``."""
    r_inv = pow(2, -width, modulus)
    return (a * b * r_inv) % modulus


def safe_modulus_bound(width: int) -> int:
    """Largest modulus provably safe for the n-column optimization.

    The paper states Observation 1 ("the highest bit of Carry is always
    0") unconditionally for any ``M < 2^n``.  Exhaustive simulation in
    this reproduction shows it actually fails once ``M`` exceeds roughly
    ``0.62 * 2^n`` (e.g. first failure at M=29 for n=5, M=49 for n=6);
    ``M < 2^(n-1)`` is provably safe: the accumulator invariant
    ``P = Sum + 2*Carry <= 2M - 1`` gives ``Carry <= M - 1 < 2^(n-1)``,
    so the left shift of line 7 never overflows the n columns.

    Practical consequence (recorded in EXPERIMENTS.md): a 14-bit modulus
    like 12289 needs a 15-bit container, or the n+1-column *vanilla*
    variant (:func:`bp_modmul_vanilla`), matching the paper's own
    throughput discussion of the 33-column fallback.
    """
    return (1 << (width - 1)) - 1


def _validate(a: int, b: int, modulus: int, width: int, allow_tight: bool) -> None:
    if width <= 2:
        raise ParameterError(f"Algorithm 2 requires n > 2, got width={width}")
    if modulus % 2 == 0 or modulus < 3:
        raise ParameterError(f"modulus must be odd and >= 3, got {modulus}")
    if modulus >= (1 << width):
        raise ParameterError(f"modulus {modulus} must satisfy M < R = 2^{width}")
    if not allow_tight and modulus > safe_modulus_bound(width):
        raise ParameterError(
            f"modulus {modulus} exceeds the provably safe bound "
            f"{safe_modulus_bound(width)} for {width} columns; use a wider "
            f"container, bp_modmul_vanilla, or pass allow_tight=True "
            f"(invariant violations then raise at runtime)"
        )
    if not 0 <= a < (1 << width):
        raise ParameterError(f"multiplier A={a} does not fit in {width} bits")
    if not 0 <= b < (1 << width):
        raise ParameterError(f"multiplicand B={b} does not fit in {width} bits")


@dataclass
class IterationTrace:
    """State snapshot after one iteration of Algorithm 2 (one Fig. 6 row)."""

    index: int
    a_bit: int
    sum_after_add: int
    carry_after_add: int
    m_selected: int
    sum_after_reduce: int
    carry_after_reduce: int

    @property
    def partial_value(self) -> int:
        """Accumulator value ``P = Sum + 2*Carry`` at iteration end."""
        return resolve_carry(self.sum_after_reduce, self.carry_after_reduce)


@dataclass
class BitParallelResult:
    """Full result of a traced Algorithm 2 run."""

    a: int
    b: int
    modulus: int
    width: int
    sum_bits: int
    carry_bits: int
    result: int
    iterations: List[IterationTrace] = field(default_factory=list)

    @property
    def raw_value(self) -> int:
        """``Sum + 2*Carry`` before the final conditional subtraction."""
        return resolve_carry(self.sum_bits, self.carry_bits)


def _reduce_step(sum_bits: int, carry_bits: int, modulus: int, width: int) -> tuple:
    """Lines 11–16: ``P = (P + m) >> 1`` in carry-save form.

    Returns ``(carry, sum, m)``.
    """
    m = modulus if sum_bits & 1 else 0
    c1, s1 = half_add(sum_bits, m, width)
    if s1 & 1:
        raise ParameterError(
            "LSB of Sum + m is 1; the paper's Observation 2 failed "
            "(modulus must be odd)"
        )
    s1 >>= 1  # Observation 2: exact halving.
    c2, s2 = half_add(s1, c1, width)
    c3, new_sum = carry_bits & s2, carry_bits ^ s2
    if c2 & c3:
        raise ParameterError("carry vectors overlap in reduction step")
    return c2 | c3, new_sum, m


def bp_modmul(
    a: int,
    b: int,
    modulus: int,
    width: int,
    *,
    normalize: bool = True,
    allow_tight: bool = False,
) -> int:
    """Algorithm 2: compute ``a * b * 2^-width mod M`` bit-parallelly.

    Args:
        a: multiplier (its bits drive the conditional adds; in BP-NTT
           this is the twiddle factor hidden in the control commands).
        b: multiplicand (an SRAM-resident coefficient row).
        modulus: odd modulus; by default restricted to the provably safe
           ``M < 2**(width-1)`` (see :func:`safe_modulus_bound`).
        width: operand bitwidth *n* (number of iterations / columns).
        normalize: apply the final conditional subtraction so the result
           is canonical.  With ``normalize=False`` the raw
           ``Sum + 2*Carry`` value (< 2M) is returned, matching what the
           SRAM array holds before the carry-resolve program runs.
        allow_tight: accept moduli up to ``2**width - 1`` as the paper
           states; invariant violations then raise
           :class:`~repro.errors.ParameterError` at runtime.

    Returns:
        ``A * B * R^-1 mod M`` with ``R = 2**width``.
    """
    _validate(a, b, modulus, width, allow_tight)
    sum_bits = 0
    carry_bits = 0
    for i in range(width):
        if (a >> i) & 1:
            carry_bits, sum_bits = carry_save_add(sum_bits, carry_bits, b, width)
        carry_bits, sum_bits, _ = _reduce_step(sum_bits, carry_bits, modulus, width)
    value = resolve_carry(sum_bits, carry_bits)
    if not normalize:
        return value
    return value - modulus if value >= modulus else value


def bp_modmul_vanilla(a: int, b: int, modulus: int, width: int) -> int:
    """The n+1-column "vanilla" variant of Algorithm 2 (§IV-D).

    Without the two shift observations, intermediate values occupy
    ``width + 1`` columns.  At that width the optimization's safety
    bound holds for *every* ``M < 2**width``, so this is also the
    correct fallback for tight moduli (e.g. Dilithium's q = 2^23 - 2^13
    + 1 in 23 data bits).  The paper quantifies the cost: a 256-column
    array fits only ``256 // (width+1)`` operands instead of
    ``256 // width`` (7 vs 8 for 32-bit words, i.e. 12.5% lower
    throughput).
    """
    columns = width + 1
    if modulus >= (1 << width):
        raise ParameterError(f"modulus {modulus} must satisfy M < 2^{width}")
    sum_bits = 0
    carry_bits = 0
    for i in range(width):
        if (a >> i) & 1:
            carry_bits, sum_bits = carry_save_add(sum_bits, carry_bits, b, columns)
        carry_bits, sum_bits, _ = _reduce_step(sum_bits, carry_bits, modulus, columns)
    value = resolve_carry(sum_bits, carry_bits)
    return value - modulus if value >= modulus else value


def bp_modmul_traced(a: int, b: int, modulus: int, width: int) -> BitParallelResult:
    """Run Algorithm 2 recording every iteration (reproduces Fig. 6).

    The paper's worked example — ``A=4, B=3, M=7, n=3`` — yields
    ``P = 0b001 + (0b010 << 1) = 5``:

    >>> r = bp_modmul_traced(4, 3, 7, 3)
    >>> (r.sum_bits, r.carry_bits, r.result)
    (1, 2, 5)
    """
    _validate(a, b, modulus, width, allow_tight=True)
    sum_bits = 0
    carry_bits = 0
    iterations: List[IterationTrace] = []
    for i in range(width):
        a_bit = (a >> i) & 1
        if a_bit:
            carry_bits, sum_bits = carry_save_add(sum_bits, carry_bits, b, width)
        sum_after_add, carry_after_add = sum_bits, carry_bits
        carry_bits, sum_bits, m = _reduce_step(sum_bits, carry_bits, modulus, width)
        iterations.append(
            IterationTrace(
                index=i,
                a_bit=a_bit,
                sum_after_add=sum_after_add,
                carry_after_add=carry_after_add,
                m_selected=m,
                sum_after_reduce=sum_bits,
                carry_after_reduce=carry_bits,
            )
        )
    value = resolve_carry(sum_bits, carry_bits)
    result = value - modulus if value >= modulus else value
    return BitParallelResult(
        a=a,
        b=b,
        modulus=modulus,
        width=width,
        sum_bits=sum_bits,
        carry_bits=carry_bits,
        result=result,
        iterations=iterations,
    )


def format_trace(result: BitParallelResult) -> str:
    """Render a traced run in the style of the paper's Fig. 6."""
    width = result.width

    def bits(value: int) -> str:
        return format(value, f"0{width}b")

    lines = [
        f"A={result.a}, B={result.b}, M={result.modulus}, n={width}",
        f"expected A*B*R^-1 mod M = "
        f"{montgomery_expected(result.a, result.b, result.modulus, width)}",
    ]
    for it in result.iterations:
        lines.append(
            f"iter {it.index}: a_i={it.a_bit}  "
            f"S={bits(it.sum_after_reduce)} C={bits(it.carry_after_reduce)}  "
            f"m={'M' if it.m_selected else '0'}  P={it.partial_value}"
        )
    lines.append(
        f"output: P = {bits(result.sum_bits)} + {bits(result.carry_bits)}<<1 "
        f"= {result.raw_value} -> {result.result}"
    )
    return "\n".join(lines)
