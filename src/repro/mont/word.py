"""Word-level Montgomery multiplication (the reference REDC).

The paper's Algorithm 2 is a bit-serial-scan, carry-save formulation of
Montgomery multiplication; this module is the classical word-level
version.  It defines the mathematical contract — ``A * B * R^-1 mod M``
— that :mod:`repro.mont.bitparallel` and the in-SRAM compiler must meet,
and provides the domain-conversion helpers used to pre-scale twiddle
factors.
"""

from __future__ import annotations

from repro.errors import ParameterError
from repro.ntt.modmath import mod_inv


class MontgomeryContext:
    """Montgomery domain for an odd modulus ``M`` with ``R = 2**r_bits``.

    >>> ctx = MontgomeryContext(3329, 16)
    >>> ctx.mul(ctx.to_mont(17), ctx.to_mont(100)) == ctx.to_mont(1700)
    True
    """

    def __init__(self, modulus: int, r_bits: int):
        if modulus < 3 or modulus % 2 == 0:
            raise ParameterError(f"Montgomery modulus must be odd and >= 3, got {modulus}")
        if modulus >= (1 << r_bits):
            raise ParameterError(
                f"modulus {modulus} must be smaller than R = 2^{r_bits}"
            )
        self.modulus = modulus
        self.r_bits = r_bits
        self.r = 1 << r_bits
        self.r_mask = self.r - 1
        self.r_inv = mod_inv(self.r, modulus)
        # m' = -M^-1 mod R, the REDC folding constant.
        self.m_prime = (-mod_inv(modulus, self.r)) % self.r

    def to_mont(self, x: int) -> int:
        """Convert ``x`` into the Montgomery domain: ``x * R mod M``."""
        return (x * self.r) % self.modulus

    def from_mont(self, x: int) -> int:
        """Convert out of the Montgomery domain: ``x * R^-1 mod M``."""
        return (x * self.r_inv) % self.modulus

    def redc(self, t: int) -> int:
        """Montgomery reduction of ``0 <= t < M * R`` to ``t * R^-1 mod M``.

        Returns a canonical residue (the textbook conditional final
        subtraction is applied).
        """
        if not 0 <= t < self.modulus * self.r:
            raise ParameterError(f"REDC input out of range: {t}")
        m = ((t & self.r_mask) * self.m_prime) & self.r_mask
        u = (t + m * self.modulus) >> self.r_bits
        return u - self.modulus if u >= self.modulus else u

    def mul(self, a: int, b: int) -> int:
        """Montgomery product ``a * b * R^-1 mod M`` of canonical residues."""
        if not (0 <= a < self.modulus and 0 <= b < self.modulus):
            raise ParameterError("Montgomery mul expects canonical residues")
        return self.redc(a * b)

    def __repr__(self) -> str:
        return f"MontgomeryContext(M={self.modulus}, R=2^{self.r_bits})"
