"""The execution-backend protocol: what every substrate must speak.

A *backend* is anything that can run the serving runtime's three kernel
ops — ``ntt``, ``intt``, ``polymul`` — on a batch of polynomials and
price the invocation with the paper's cycle/energy model.  The contract
is four methods:

- :meth:`Backend.capabilities` — static facts: batch capacity, the ops
  supported, and whether the instance holds per-lane state.
- :meth:`Backend.compile` — turn ``(op, operand)`` into a reusable
  :class:`CompiledKernel` handle (the CTRL/CMD "store the program once"
  story: handles are cached and shared across batches).
- :meth:`Backend.execute` — run one handle over a list of payload
  polynomials, returning one canonical coefficient list per payload.
- :meth:`Backend.profile` — the handle's :class:`CostReport`, priced
  from the same per-instruction tables the executor charges, so every
  backend reports byte-identical cycles and energy for the same kernel.

Backends are constructed by registry factories with the uniform
signature ``factory(params, *, rows, cols, subarrays, tech, template,
width)`` (see :mod:`repro.backends.registry`); ``template`` optionally
shares a caller-owned :class:`~repro.core.engine.BPNTTEngine` so its
compiled-program cache prices every backend from one compilation.

This module sits *below* ``repro.core``: it may import only the sram
layer, which is what lets the engines themselves implement the
protocol without an import cycle.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Protocol, Sequence, Tuple, runtime_checkable

from repro.sram.cost import CostReport
from repro.sram.energy import TechnologyModel
from repro.sram.executor import ExecutionStats, profile_program
from repro.sram.program import Program

#: Kernel operations every backend must support (the serving runtime's
#: request vocabulary; ``repro.serve.request`` re-exports this).
KERNEL_OPS = ("ntt", "intt", "polymul")


@dataclass(frozen=True)
class BackendCapabilities:
    """Static facts a pool or CLI can plan around.

    Attributes:
        name: the registry name this instance serves.
        description: one-line human summary for ``repro.cli backends``.
        batch: polynomials absorbed per invocation (all replicas).
        stateful: True when the instance owns mutable storage (a real
            subarray) and therefore needs one private instance per pool
            lane; False for pure substrates one instance can serve from
            every lane.
        ops: supported kernel operations.
    """

    name: str
    description: str
    batch: int
    stateful: bool = False
    ops: Tuple[str, ...] = KERNEL_OPS


@dataclass(frozen=True)
class CompiledKernel:
    """A backend's reusable handle for one ``(op, operand)`` kernel.

    Attributes:
        op: ``"ntt"``, ``"intt"`` or ``"polymul"``.
        operand: canonical coefficients of the fixed second polynomial
            (``polymul`` only).
        operand_hat: the operand's forward NTT, transformed once at
            compile time and reused by every batch.
        programs: the compiled instruction streams the invocation runs,
            in execution order — also the pricing ground truth.
    """

    op: str
    operand: Optional[Tuple[int, ...]]
    operand_hat: Optional[Tuple[int, ...]]
    programs: Tuple[Program, ...]


def price_programs(programs: Sequence[Program], tech: TechnologyModel,
                   *, replicas: int = 1) -> CostReport:
    """Price an instruction-stream sequence with the shared cost tables.

    This is the one pricing routine behind every ``Backend.profile``
    (and the analysis sweeps): statically profile each program, merge,
    convert to a :class:`CostReport`, and apply the ganged-subarray
    replication rule.  Keeping it single-sourced is what makes backend
    cost reports byte-identical.
    """
    stats = ExecutionStats.merge(*(profile_program(p, tech) for p in programs))
    return CostReport.from_stats(stats, tech).replicate(replicas)


@runtime_checkable
class Backend(Protocol):
    """Structural interface of an execution backend.

    ``BPNTTEngine`` and ``BankedEngine`` implement this directly; pure
    substrates (gold model, numpy) wrap a template engine for pricing.
    """

    def capabilities(self) -> BackendCapabilities:
        """Static facts about this instance."""
        ...  # pragma: no cover - protocol

    def compile(self, op: str,
                operand: Optional[Sequence[int]] = None) -> CompiledKernel:
        """Build (or fetch the cached) handle for one kernel."""
        ...  # pragma: no cover - protocol

    def execute(self, kernel: CompiledKernel,
                payloads: Sequence[Sequence[int]]) -> List[List[int]]:
        """Run the kernel over ``payloads``; one result list each."""
        ...  # pragma: no cover - protocol

    def profile(self, kernel: CompiledKernel) -> CostReport:
        """The cycle/energy price of one invocation of ``kernel``."""
        ...  # pragma: no cover - protocol
