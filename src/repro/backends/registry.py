"""String-keyed registry of execution-backend factories.

The registry is the seam the rest of the codebase dispatches through:
``repro.serve.pool`` resolves its execution mode here, the CLI derives
its ``--backend`` choices from :func:`available_backends`, and third
parties extend the system by registering a factory under a new name —
no layer above this module hardcodes the set of substrates.

A *factory* is any callable with the uniform construction signature::

    factory(params: NTTParams, *, rows=256, cols=256, subarrays=1,
            tech=TECH_45NM, template=None, width=None) -> Backend

Factories may be registered lazily as ``"module.path:attribute"``
strings; the module is imported on first :func:`get_backend`, which is
how the built-ins avoid an import cycle with ``repro.core`` (and how a
backend with an optional dependency stays cheap to register).
"""

from __future__ import annotations

import importlib
from typing import Callable, Dict, Tuple, Union

from repro.errors import BackendError

#: name -> factory callable, or a "module:attr" string resolved lazily.
_REGISTRY: Dict[str, Union[str, Callable]] = {}


def register_backend(name: str, factory: Union[str, Callable], *,
                     replace: bool = False) -> None:
    """Register a backend factory under ``name``.

    ``factory`` is either a callable with the uniform construction
    signature or a lazy ``"module.path:attribute"`` spec.  Registering
    an existing name raises :class:`~repro.errors.BackendError` unless
    ``replace=True`` (duplicate registrations are almost always two
    modules fighting over a name).
    """
    if not name or not isinstance(name, str):
        raise BackendError(f"backend name must be a non-empty string, got {name!r}")
    if name in _REGISTRY and not replace:
        raise BackendError(
            f"backend {name!r} is already registered; pass replace=True to override"
        )
    if isinstance(factory, str):
        if ":" not in factory:
            raise BackendError(
                f"lazy backend spec must look like 'module.path:attribute', "
                f"got {factory!r}"
            )
    elif not callable(factory):
        raise BackendError(f"backend factory must be callable, got {factory!r}")
    _REGISTRY[name] = factory


def unregister_backend(name: str) -> None:
    """Remove a backend (no-op when absent); used by tests and plugins."""
    _REGISTRY.pop(name, None)


def get_backend(name: str) -> Callable:
    """The factory registered under ``name`` (resolving lazy specs)."""
    try:
        spec = _REGISTRY[name]
    except KeyError:
        raise BackendError(
            f"unknown backend {name!r}; available: "
            f"{', '.join(available_backends()) or '(none)'}"
        ) from None
    if isinstance(spec, str):
        module_name, _, attribute = spec.partition(":")
        try:
            spec = getattr(importlib.import_module(module_name), attribute)
        except (ImportError, AttributeError) as error:
            raise BackendError(
                f"backend {name!r} failed to load from {module_name}:{attribute}: {error}"
            ) from error
        _REGISTRY[name] = spec
    return spec


def available_backends() -> Tuple[str, ...]:
    """Registered backend names, sorted (the CLI's ``--backend`` choices)."""
    return tuple(sorted(_REGISTRY))


def create_backend(name: str, params, **kwargs):
    """Construct a backend instance: ``get_backend(name)(params, **kwargs)``."""
    return get_backend(name)(params, **kwargs)
