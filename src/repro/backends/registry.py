"""String-keyed registry of execution-backend factories.

The registry is the seam the rest of the codebase dispatches through:
``repro.serve.pool`` resolves its execution mode here, the CLI derives
its ``--backend`` choices from :func:`available_backends`, and third
parties extend the system by registering a factory under a new name —
no layer above this module hardcodes the set of substrates.  The
mechanics (validation, lazy specs, listing) live in the shared
:class:`repro.registry.FactoryRegistry`, which
:mod:`repro.sched.registry` builds on too.

A *factory* is any callable with the uniform construction signature::

    factory(params: NTTParams, *, rows=256, cols=256, subarrays=1,
            tech=TECH_45NM, template=None, width=None) -> Backend

Factories may be registered lazily as ``"module.path:attribute"``
strings; the module is imported on first :func:`get_backend`, which is
how the built-ins avoid an import cycle with ``repro.core`` (and how a
backend with an optional dependency stays cheap to register).
"""

from __future__ import annotations

from typing import Callable, Tuple, Union

from repro.errors import BackendError
from repro.registry import FactoryRegistry

_REGISTRY = FactoryRegistry("backend", BackendError)


def register_backend(name: str, factory: Union[str, Callable], *,
                     replace: bool = False) -> None:
    """Register a backend factory under ``name``.

    ``factory`` is either a callable with the uniform construction
    signature or a lazy ``"module.path:attribute"`` spec.  Registering
    an existing name raises :class:`~repro.errors.BackendError` unless
    ``replace=True`` (duplicate registrations are almost always two
    modules fighting over a name).
    """
    _REGISTRY.register(name, factory, replace=replace)


def unregister_backend(name: str) -> None:
    """Remove a backend (no-op when absent); used by tests and plugins."""
    _REGISTRY.unregister(name)


def get_backend(name: str) -> Callable:
    """The factory registered under ``name`` (resolving lazy specs)."""
    return _REGISTRY.get(name)


def available_backends() -> Tuple[str, ...]:
    """Registered backend names, sorted (the CLI's ``--backend`` choices)."""
    return _REGISTRY.available()


def create_backend(name: str, params, **kwargs):
    """Construct a backend instance: ``get_backend(name)(params, **kwargs)``."""
    return get_backend(name)(params, **kwargs)
