"""The ``model`` backend: gold-model results, compiled-program pricing.

Results come from the reference transforms in
:mod:`repro.ntt.transform`; the invocation is priced by statically
profiling the *actual compiled programs* of a template
:class:`~repro.core.engine.BPNTTEngine`.  Because the executor charges
fixed per-class costs, the price is cycle- and energy-identical to
interpreting the subarray — at a tiny fraction of the host time.  This
is the serving runtime's default substrate.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from repro.backends.base import BackendCapabilities, CompiledKernel
from repro.core.engine import BPNTTEngine
from repro.errors import ParameterError
from repro.ntt.params import NTTParams
from repro.ntt.transform import intt_negacyclic, ntt_negacyclic
from repro.sram.cost import CostReport
from repro.sram.energy import TECH_45NM, TechnologyModel


class ModelBackend:
    """Pure (stateless) backend: gold math, cycle-accurate pricing."""

    name = "model"
    description = ("gold transforms for results, statically priced from the "
                   "compiled programs (cycle-identical to sram)")

    def __init__(
        self,
        params: NTTParams,
        *,
        rows: int = 256,
        cols: int = 256,
        subarrays: int = 1,
        tech: TechnologyModel = TECH_45NM,
        template: Optional[BPNTTEngine] = None,
        width: Optional[int] = None,
    ):
        if subarrays < 1:
            raise ParameterError(f"subarrays must be >= 1, got {subarrays}")
        self.params = params
        self.subarrays = subarrays
        self.template = template if template is not None else BPNTTEngine(
            params, width=width, rows=rows, cols=cols, tech=tech
        )
        self.tech = self.template.tech

    # -- protocol ---------------------------------------------------------

    def capabilities(self) -> BackendCapabilities:
        return BackendCapabilities(
            name=self.name,
            description=self.description,
            batch=self.template.batch * self.subarrays,
            stateful=False,
        )

    def compile(self, op: str,
                operand: Optional[Sequence[int]] = None) -> CompiledKernel:
        """Delegate to the template engine's cached kernel handles."""
        return self.template.compile(op, operand)

    def execute(self, kernel: CompiledKernel,
                payloads: Sequence[Sequence[int]]) -> List[List[int]]:
        return [self._transform(kernel, list(payload)) for payload in payloads]

    def profile(self, kernel: CompiledKernel) -> CostReport:
        return self.template.profile(kernel).replicate(self.subarrays)

    # -- gold math --------------------------------------------------------

    def _transform(self, kernel: CompiledKernel, payload: List[int]) -> List[int]:
        table = self.template.twiddle_table
        if kernel.op == "ntt":
            return ntt_negacyclic(payload, self.params, table)
        if kernel.op == "intt":
            return intt_negacyclic(payload, self.params, table)
        # polymul: forward-transform the payload, multiply pointwise by
        # the operand's compile-time NTT, and come back.
        q = self.params.q
        payload_hat = ntt_negacyclic(payload, self.params, table)
        product = [(a * b) % q for a, b in zip(payload_hat, kernel.operand_hat)]
        return intt_negacyclic(product, self.params, table)

    def __repr__(self) -> str:
        return (f"{type(self).__name__}({self.params!r}, "
                f"subarrays={self.subarrays})")
