"""The ``numpy`` backend: one vectorized transform per *batch*.

The scalar gold model walks each polynomial's butterflies in Python;
this backend runs the identical Cooley–Tukey / Gentleman–Sande
schedules as stage-wise numpy array operations over the whole batch at
once — the same twiddle tables, the same consumption order, the same
arithmetic mod q, so results are bit-identical to the gold model while
the host cost per polynomial collapses.  Pricing is inherited from
:class:`~repro.backends.model.ModelBackend`: the compiled programs of
the template engine, charged from the shared cost tables — which is
what makes its :class:`~repro.sram.cost.CostReport` byte-identical to
the ``model`` and ``sram`` backends'.

Everything stays in ``int64``: coefficients and twiddles are canonical
(< q), so every intermediate product is bounded by ``(q-1)**2`` and the
backend refuses moduli past 31 bits rather than overflow silently.
"""

from __future__ import annotations

from typing import List, Sequence

import numpy as np

from repro.backends.base import CompiledKernel
from repro.backends.model import ModelBackend
from repro.errors import BackendError, ParameterError
from repro.ntt.params import NTTParams

#: Largest modulus whose products fit int64: (q-1)^2 < 2^63.
_MAX_MODULUS_BITS = 31


class NumpyBackend(ModelBackend):
    """Vectorized negacyclic NTT gold model, cost-table priced."""

    name = "numpy"
    description = ("vectorized numpy negacyclic NTT over the whole batch, "
                   "priced by the same cost tables")

    def __init__(self, params: NTTParams, **kwargs):
        super().__init__(params, **kwargs)
        if params.q.bit_length() > _MAX_MODULUS_BITS:
            raise BackendError(
                f"numpy backend supports moduli up to {_MAX_MODULUS_BITS} bits "
                f"(int64 products); q={params.q} has {params.q.bit_length()}"
            )
        table = self.template.twiddle_table
        self._forward = np.asarray(table.forward, dtype=np.int64)
        self._inverse = np.asarray(table.inverse, dtype=np.int64)
        self._n_inv = params.n_inv

    def execute(self, kernel: CompiledKernel,
                payloads: Sequence[Sequence[int]]) -> List[List[int]]:
        if not payloads:
            return []
        n, q = self.params.n, self.params.q
        for index, payload in enumerate(payloads):
            if len(payload) != n:
                raise ParameterError(
                    f"payload {index} has {len(payload)} coefficients, expected {n}"
                )
        batch = np.asarray([list(p) for p in payloads], dtype=np.int64) % q
        if kernel.op == "ntt":
            out = self._ntt(batch)
        elif kernel.op == "intt":
            out = self._intt(batch)
        else:
            hat = np.asarray(kernel.operand_hat, dtype=np.int64)
            out = self._intt(self._ntt(batch) * hat % q)
        return out.tolist()

    # -- vectorized schedules ---------------------------------------------
    #
    # Both loops mirror repro.ntt.transform exactly, with the inner
    # per-coefficient loop replaced by a (batch, blocks, 2*length)
    # reshape: within a stage every block's butterflies run as one
    # array expression, broadcasting one zeta per block.

    def _ntt(self, batch: np.ndarray) -> np.ndarray:
        q, n = self.params.q, self.params.n
        rows = batch.shape[0]
        k = 0
        length = n // 2
        while length > 0:
            blocks_n = n // (2 * length)
            # Algorithm 1 consumes zeta[++k] block by block, in order.
            zetas = self._forward[k + 1:k + 1 + blocks_n].reshape(1, blocks_n, 1)
            k += blocks_n
            blocks = batch.reshape(rows, blocks_n, 2 * length)
            low = blocks[:, :, :length].copy()
            t = zetas * blocks[:, :, length:] % q
            blocks[:, :, length:] = (low - t) % q
            blocks[:, :, :length] = (low + t) % q
            length //= 2
        return batch

    def _intt(self, batch: np.ndarray) -> np.ndarray:
        q, n = self.params.q, self.params.n
        rows = batch.shape[0]
        k = n
        length = 1
        while length < n:
            blocks_n = n // (2 * length)
            # Gentleman–Sande consumes zeta[--k]: descending within a stage.
            zetas = self._inverse[k - blocks_n:k][::-1].reshape(1, blocks_n, 1)
            k -= blocks_n
            blocks = batch.reshape(rows, blocks_n, 2 * length)
            low = blocks[:, :, :length].copy()
            high = blocks[:, :, length:].copy()
            blocks[:, :, :length] = (low + high) % q
            blocks[:, :, length:] = zetas * ((low - high) % q) % q
            length *= 2
        return batch * self._n_inv % q
