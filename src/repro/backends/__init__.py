"""repro.backends — unified execution backends behind every layer.

The core library grew three ways of running a kernel: the bitline
interpreter (exact, slow), the gold transforms with static pricing
(fast, cycle-identical), and host-side vectorized math.  This package
turns that ad-hoc split into an API: a :class:`~repro.backends.base.Backend`
protocol (``capabilities`` / ``compile`` / ``execute`` / ``profile``),
a string-keyed registry, and a shared
:class:`~repro.sram.cost.CostReport` every substrate prices with.

Built-in backends:

- ``sram`` — the subarray interpreter (:class:`~repro.core.engine.BPNTTEngine`
  or :class:`~repro.core.multiarray.BankedEngine`, which implement the
  protocol natively).  Exact, used to pin the others.
- ``model`` — gold transforms for results, compiled programs for
  pricing; cycle-identical to ``sram`` at a fraction of the host time.
- ``numpy`` — vectorized negacyclic NTT over the whole batch at once,
  priced by the same cost tables (registered only when numpy is
  importable).

Write your own by registering a factory::

    from repro.backends import register_backend
    register_backend("mine", "my_package.backend:build")   # lazy, or
    register_backend("mine2", MyBackend)                   # eager

after which ``repro.cli serve --backend mine`` and
:meth:`EnginePool.serve` reach it with no further wiring.
"""

from importlib.util import find_spec

from repro.backends.base import (
    KERNEL_OPS,
    Backend,
    BackendCapabilities,
    CompiledKernel,
    price_programs,
)
from repro.backends.registry import (
    available_backends,
    create_backend,
    get_backend,
    register_backend,
    unregister_backend,
)
from repro.errors import BackendError
from repro.sram.cost import CostReport

# Built-ins register lazily ("module:attr") so importing this package
# never imports repro.core — which is what lets the engines themselves
# import the protocol types above.
register_backend("model", "repro.backends.model:ModelBackend", replace=True)
register_backend("sram", "repro.backends.sram:build_sram_backend", replace=True)
if find_spec("numpy") is not None:
    register_backend("numpy", "repro.backends.numpy_gold:NumpyBackend", replace=True)

__all__ = [
    "Backend",
    "BackendCapabilities",
    "BackendError",
    "CompiledKernel",
    "CostReport",
    "KERNEL_OPS",
    "available_backends",
    "create_backend",
    "get_backend",
    "price_programs",
    "register_backend",
    "unregister_backend",
]
