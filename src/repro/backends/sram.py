"""The ``sram`` backend factory: the bitline-accurate interpreter.

:class:`~repro.core.engine.BPNTTEngine` and
:class:`~repro.core.multiarray.BankedEngine` implement the
:class:`~repro.backends.base.Backend` protocol themselves; this module
only chooses between them from the uniform factory signature (one bare
subarray, or ``subarrays`` ganged under a shared CTRL/CMD stream) so
the registry can construct either behind the one name.
"""

from __future__ import annotations

from typing import Optional

from repro.core.engine import BPNTTEngine
from repro.core.multiarray import BankedEngine
from repro.ntt.params import NTTParams
from repro.sram.cache import BankGeometry
from repro.sram.energy import TECH_45NM, TechnologyModel


def build_sram_backend(
    params: NTTParams,
    *,
    rows: int = 256,
    cols: int = 256,
    subarrays: int = 1,
    tech: TechnologyModel = TECH_45NM,
    template: Optional[BPNTTEngine] = None,
    width: Optional[int] = None,
):
    """Build the interpreter backend for one parameter set.

    With ``subarrays == 1`` a caller-shared ``template`` engine is used
    directly when given (the pool's lane 0 *is* its pricing template,
    preserving the compiled-program cache); otherwise a fresh engine is
    built.  ``subarrays > 1`` gangs that many data subarrays plus the
    shared CTRL/CMD subarray into a :class:`BankedEngine`.
    """
    if subarrays == 1:
        if template is not None:
            return template
        return BPNTTEngine(params, width=width, rows=rows, cols=cols, tech=tech)
    geometry = BankGeometry(
        subarrays_per_bank=subarrays + 1, rows=rows, cols=cols
    )
    return BankedEngine(params, width=width, geometry=geometry, tech=tech)
